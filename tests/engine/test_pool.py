"""Parity suite for the columnar request pool.

:class:`~repro.engine.pool.ListPool` -- a list of per-request
:class:`RequestState` objects driven with the historical per-object scans --
is the executable specification; these tests drive it and the columnar
:class:`~repro.engine.pool.RequestPool` through the same randomized
admission/advance/compaction schedules and assert identical behaviour at
every step:

* grouped reductions (average input/context, context-token sums) agree,
* advance returns the same first-token/completion id sets in the same
  order, and over-advancing raises on both backends,
* compaction filters the same ids in the same order, ids are *stable*
  across compaction (a surviving id keeps denoting the same request), and
  completed ids never resurrect,
* alive/done counts agree (the columnar ones are O(1) counters),
* timestamp stamping and final metric collection agree.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.pool import EMPTY_IDS, ListPool, RequestPool, RequestView, make_pool
from repro.workloads.trace import RequestSpec

REQUESTS = st.lists(
    st.tuples(st.integers(1, 24), st.integers(1, 10)),
    min_size=1,
    max_size=32,
)


def _specs(lens):
    return [
        RequestSpec(100 + i, input_len, output_len, 0.0)
        for i, (input_len, output_len) in enumerate(lens)
    ]


def _both(lens):
    specs = _specs(lens)
    columnar = RequestPool()
    columnar.admit_specs(specs)
    reference = ListPool()
    reference.admit_specs(specs)
    return columnar, reference


class TestRandomScheduleParity:
    @given(
        lens=REQUESTS,
        seed=st.integers(0, 2 ** 32 - 1),
        decoder_only=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_admission_advance_compaction_match_reference(
        self, lens, seed, decoder_only
    ):
        columnar, reference = _both(lens)
        rng = np.random.default_rng(seed)
        active = columnar.ids()
        original_request_ids = {
            int(rid): columnar.request_id_of(int(rid)) for rid in active
        }
        ever_done: set[int] = set()

        for _ in range(64):
            assert columnar.alive_count == reference.alive_count
            assert columnar.done_count == reference.done_count
            if active.size == 0:
                break
            # A random micro-batch of the standing pool advances one token.
            mask = rng.random(active.size) < 0.7
            group = active[mask]
            group_alive_col = columnar.compact(group)
            group_alive_ref = reference.compact(group)
            assert np.array_equal(group_alive_col, group_alive_ref)

            # Grouped reductions agree before the advance mutates state.
            assert columnar.remaining_tokens(group) == reference.remaining_tokens(
                group
            )
            assert columnar.done_count_of(group) == reference.done_count_of(group)
            assert columnar.alive_count_of(group) == reference.alive_count_of(group)
            assert columnar.average_input(group_alive_col) == reference.average_input(
                group_alive_ref
            )
            assert columnar.average_context(
                group_alive_col, decoder_only
            ) == reference.average_context(group_alive_ref, decoder_only)
            assert columnar.context_token_sum(
                group_alive_col, decoder_only
            ) == reference.context_token_sum(group_alive_ref, decoder_only)
            assert columnar.max_output_len(group_alive_col) == reference.max_output_len(
                group_alive_ref
            )

            first_col, done_col = columnar.advance(group_alive_col)
            first_ref, done_ref = reference.advance(group_alive_ref)
            assert np.array_equal(first_col, first_ref)
            assert np.array_equal(done_col, done_ref)

            # No resurrection: completed ids stay completed forever.
            ever_done.update(done_col.tolist())
            active_col = columnar.compact(active)
            active_ref = reference.compact(active)
            assert np.array_equal(active_col, active_ref)
            assert not ever_done.intersection(active_col.tolist())
            active = active_col

            # Id stability: surviving ids keep denoting the same requests.
            for rid in active.tolist():
                assert columnar.request_id_of(rid) == original_request_ids[rid]
                assert reference.request_id_of(rid) == original_request_ids[rid]

        assert np.array_equal(columnar.generated, np.asarray(
            [s.generated for s in reference.states], dtype=np.int64
        ))
        assert np.array_equal(
            columnar.done, np.asarray([s.done for s in reference.states])
        )

    @given(lens=REQUESTS, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_stamping_and_collection_match_reference(self, lens, seed):
        columnar, reference = _both(lens)
        rng = np.random.default_rng(seed)
        ids = columnar.ids()
        # Drive every request to completion in random batches.
        active = ids
        while active.size:
            mask = rng.random(active.size) < 0.8
            batch = columnar.compact(active[mask])
            columnar.advance(batch)
            reference.advance(batch)
            active = columnar.compact(active)
        starts = rng.random(ids.size)
        finishes = starts + 1.0 + rng.random(ids.size)
        for rid, start, finish in zip(ids.tolist(), starts, finishes):
            one = np.array([rid], dtype=np.int64)
            columnar.stamp_encode_start(one, float(start))
            columnar.stamp_finish(one, float(finish))
            reference.stamp_encode_start(one, float(start))
            reference.stamp_finish(one, float(finish))
        col = columnar.completion_arrays(ids)
        ref = reference.completion_arrays(ids)
        assert np.array_equal(col[0], ref[0])  # latencies
        assert np.array_equal(col[1], ref[1])  # completion times
        assert np.array_equal(col[2], ref[2])  # output lengths
        assert col[3] == ref[3]  # generated tokens


class TestMultiOwnerSlices:
    """One shared pool behind disjoint replica-local id slices.

    The fleet invariant: N replicas holding disjoint id slices of ONE
    shared :class:`RequestPool` must behave exactly like N replicas each
    owning an independent pool.  Interleaved advance/compact schedules over
    the slices are compared against N independent :class:`ListPool`\\ s
    (the executable reference), asserting per-slice parity, id stability,
    no cross-replica resurrection, and that the shared pool's O(1)
    fleet-wide counts equal the sum of the independent pools'.
    """

    @given(
        lens=st.lists(
            st.tuples(st.integers(1, 24), st.integers(1, 10)),
            min_size=3,
            max_size=32,
        ),
        seed=st.integers(0, 2 ** 32 - 1),
        replicas=st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_disjoint_slices_match_independent_pools(self, lens, seed, replicas):
        specs = _specs(lens)
        shared = RequestPool()
        ids = shared.admit_specs(specs)
        # Round-robin partition into replica-local slices (the id handoff).
        slices = [ids[r::replicas] for r in range(replicas)]
        independent: list[ListPool] = []
        to_local: list[dict[int, int]] = []
        for sl in slices:
            pool = ListPool()
            pool.admit_specs([specs[g] for g in sl.tolist()])
            independent.append(pool)
            to_local.append({int(g): k for k, g in enumerate(sl.tolist())})

        def localize(r: int, globals_: np.ndarray) -> np.ndarray:
            return np.array(
                [to_local[r][int(g)] for g in globals_.tolist()], dtype=np.int64
            )

        rng = np.random.default_rng(seed)
        active = [shared.compact(sl) for sl in slices]
        ever_done: set[int] = set()
        for _ in range(64):
            if all(a.size == 0 for a in active):
                break
            r = int(rng.integers(replicas))
            acts = active[r]
            if acts.size == 0:
                continue
            mask = rng.random(acts.size) < 0.7
            group = acts[mask]
            local_group = localize(r, group)

            # Reductions over the slice agree with the independent pool.
            assert shared.remaining_tokens(group) == independent[
                r
            ].remaining_tokens(local_group)
            assert shared.done_count_of(acts) == independent[r].done_count_of(
                localize(r, acts)
            )
            assert shared.average_input(group) == independent[r].average_input(
                local_group
            )

            first_shared, done_shared = shared.advance(group)
            first_ref, done_ref = independent[r].advance(local_group)
            assert np.array_equal(localize(r, first_shared), first_ref)
            assert np.array_equal(localize(r, done_shared), done_ref)
            ever_done.update(done_shared.tolist())

            # Per-slice compaction matches the independent pool's.
            active[r] = shared.compact(acts)
            ref_active = independent[r].compact(localize(r, acts))
            assert np.array_equal(localize(r, active[r]), ref_active)

            # No cross-replica interference: every other slice's alive set
            # is untouched by this replica's advance/compaction, and no
            # completed id resurrects under ANY owner.
            for other in range(replicas):
                assert not ever_done.intersection(active[other].tolist())
                if other != r:
                    assert np.array_equal(
                        active[other], shared.compact(slices[other])
                    )

        # Fleet-wide O(1) counts reduce over the shared pool exactly as the
        # sum of the independent pools'.
        assert shared.alive_count == sum(p.alive_count for p in independent)
        assert shared.done_count == sum(p.done_count for p in independent)
        for r, sl in enumerate(slices):
            assert shared.remaining_tokens(sl) == independent[r].remaining_tokens(
                independent[r].ids()
            )

    @given(
        lens=st.lists(
            st.tuples(st.integers(1, 24), st.integers(1, 10)),
            min_size=3,
            max_size=32,
        ),
        seed=st.integers(0, 2 ** 32 - 1),
        replicas=st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_crash_requeue_schedules(self, lens, seed, replicas):
        """Random crash/requeue events interleave with the advance schedule.

        A "crash" of replica ``r`` requeues its entire alive slice through
        the shared pool (and the independent reference pool).  The fleet
        invariants must survive arbitrarily interleaved crashes: ids stay
        stable, no completed id resurrects under any owner, alive/done
        counts are conserved (a requeue rewinds progress, never outcomes),
        and the slices stay in lockstep with the independent pools.
        """
        specs = _specs(lens)
        shared = RequestPool()
        ids = shared.admit_specs(specs)
        slices = [ids[r::replicas] for r in range(replicas)]
        independent: list[ListPool] = []
        to_local: list[dict[int, int]] = []
        for sl in slices:
            pool = ListPool()
            pool.admit_specs([specs[g] for g in sl.tolist()])
            independent.append(pool)
            to_local.append({int(g): k for k, g in enumerate(sl.tolist())})

        def localize(r: int, globals_: np.ndarray) -> np.ndarray:
            return np.array(
                [to_local[r][int(g)] for g in globals_.tolist()], dtype=np.int64
            )

        original_request_ids = {
            int(g): shared.request_id_of(int(g)) for g in ids.tolist()
        }
        rng = np.random.default_rng(seed)
        active = [shared.compact(sl) for sl in slices]
        ever_done: set[int] = set()
        for _ in range(64):
            if all(a.size == 0 for a in active):
                break
            r = int(rng.integers(replicas))
            acts = active[r]
            if acts.size == 0:
                continue

            if rng.random() < 0.25:
                # Crash: the whole alive slice rewinds on both backends.
                shared.requeue(acts)
                independent[r].requeue(localize(r, acts))
                assert np.all(shared.generated[acts] == 0)
                # Conservation: a requeue changes progress, never outcomes.
                assert shared.alive_count == sum(
                    p.alive_count for p in independent
                )
                assert shared.done_count == sum(
                    p.done_count for p in independent
                )
                for other in range(replicas):
                    assert not ever_done.intersection(
                        shared.compact(slices[other]).tolist()
                    )
                continue

            mask = rng.random(acts.size) < 0.7
            group = acts[mask]
            first_shared, done_shared = shared.advance(group)
            first_ref, done_ref = independent[r].advance(localize(r, group))
            assert np.array_equal(localize(r, first_shared), first_ref)
            assert np.array_equal(localize(r, done_shared), done_ref)
            ever_done.update(done_shared.tolist())

            active[r] = shared.compact(acts)
            assert np.array_equal(
                localize(r, active[r]),
                independent[r].compact(localize(r, acts)),
            )
            # Id stability across crashes: surviving ids keep denoting the
            # same requests, no matter how often they were requeued.
            for g in active[r].tolist():
                assert shared.request_id_of(g) == original_request_ids[g]

        # A completed id can never be requeued, under ANY owner's slice.
        done_ids = np.asarray(sorted(ever_done), dtype=np.int64)
        if done_ids.size:
            with pytest.raises(ValueError, match="cannot requeue"):
                shared.requeue(done_ids[:1])
        for r, sl in enumerate(slices):
            assert shared.remaining_tokens(sl) == independent[r].remaining_tokens(
                independent[r].ids()
            )


class TestRequeue:
    """``requeue`` -- the crash/preemption rewind -- in parity on both
    backends: vectorized column rewind (:class:`RequestPool`) against the
    per-object reference (:class:`ListPool`)."""

    @given(lens=REQUESTS, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_requeue_matches_reference(self, lens, seed):
        columnar, reference = _both(lens)
        rng = np.random.default_rng(seed)
        active = columnar.ids()
        for _ in range(32):
            if active.size == 0:
                break
            mask = rng.random(active.size) < 0.7
            batch = columnar.compact(active[mask])
            if batch.size:
                columnar.stamp_encode_start(batch, 1.0)
                reference.stamp_encode_start(batch, 1.0)
                columnar.advance(batch)
                reference.advance(batch)
            # A random crash reclaims a subset of the still-alive ids.
            alive = columnar.compact(active)
            crashed = alive[rng.random(alive.size) < 0.3]
            columnar.requeue(crashed)
            reference.requeue(crashed)
            assert columnar.remaining_tokens(crashed) == reference.remaining_tokens(
                crashed
            )
            if crashed.size:
                assert np.all(columnar.generated[crashed] == 0)
            active = alive
        assert np.array_equal(columnar.generated, np.asarray(
            [s.generated for s in reference.states], dtype=np.int64
        ))
        assert np.array_equal(
            columnar.done, np.asarray([s.done for s in reference.states])
        )
        assert np.array_equal(columnar.encode_start_s, np.asarray(
            [s.encode_start_s for s in reference.states]
        ))
        assert np.array_equal(columnar.finish_s, np.asarray(
            [s.finish_s for s in reference.states]
        ))

    @pytest.mark.parametrize("columnar", [True, False])
    def test_requeue_done_id_raises_and_mutates_nothing(self, columnar):
        pool = RequestPool() if columnar else ListPool()
        ids = pool.admit_specs(
            [RequestSpec(0, 4, 2, 0.0), RequestSpec(1, 4, 3, 0.0)]
        )
        pool.advance(ids, 2)  # request 0 (output_len 2) completes
        with pytest.raises(ValueError, match="cannot requeue"):
            pool.requeue(ids)  # mixed batch with a done member
        # Atomicity: the failed mixed batch touched neither id.
        assert pool.remaining_tokens(ids[1:]) == 1
        with pytest.raises(ValueError, match="cannot requeue"):
            pool.requeue(ids[:1])
        # A live-only requeue rewinds generation to zero.
        pool.requeue(ids[1:])
        assert pool.remaining_tokens(ids[1:]) == 3

    @pytest.mark.parametrize("columnar", [True, False])
    def test_requeue_empty_is_a_noop(self, columnar):
        pool = RequestPool() if columnar else ListPool()
        pool.admit_specs([RequestSpec(0, 4, 2, 0.0)])
        pool.requeue(EMPTY_IDS)
        assert pool.alive_count == 1


class TestAdvanceGuards:
    @pytest.mark.parametrize("columnar", [True, False])
    def test_over_advance_raises(self, columnar):
        pool = RequestPool() if columnar else ListPool()
        ids = pool.admit_specs([RequestSpec(0, 4, 2, 0.0)])
        pool.advance(ids, 2)
        with pytest.raises(ValueError):
            pool.advance(ids)

    @pytest.mark.parametrize("columnar", [True, False])
    def test_negative_advance_rejected(self, columnar):
        pool = RequestPool() if columnar else ListPool()
        ids = pool.admit_specs([RequestSpec(0, 4, 2, 0.0)])
        with pytest.raises(ValueError):
            pool.advance(ids, -1)

    def test_unfinished_request_blocks_collection(self):
        pool = RequestPool()
        ids = pool.admit_specs([RequestSpec(7, 4, 2, 0.0)])
        with pytest.raises(ValueError, match="did not complete"):
            pool.completion_arrays(ids)


class TestCountsAndIds:
    def test_counts_are_incremental(self):
        pool = RequestPool()
        ids = pool.admit_specs(
            [RequestSpec(i, 8, 1 + i % 3, 0.0) for i in range(9)]
        )
        assert pool.alive_count == 9
        assert pool.done_count == 0
        # Finish the output_len==1 third of the pool.
        pool.advance(ids)
        assert pool.done_count == 3
        assert pool.alive_count == 6
        assert pool.compact(ids).size == 6

    def test_batch_admission_preserves_trace_order(self):
        specs = [RequestSpec(50 - i, 4 + i, 2, 0.0) for i in range(5)]
        pool = RequestPool()
        ids = pool.admit_specs(specs)
        assert ids.tolist() == [0, 1, 2, 3, 4]
        assert [pool.request_id_of(i) for i in range(5)] == [50, 49, 48, 47, 46]
        later = pool.admit_specs([RequestSpec(99, 3, 1, 2.5)])
        assert later.tolist() == [5]  # append-only: earlier ids untouched
        assert pool.input_len_of(0) == 4

    def test_empty_compact_and_reductions(self):
        pool = RequestPool()
        pool.admit_specs([RequestSpec(0, 4, 2, 0.0)])
        assert pool.compact(EMPTY_IDS).size == 0
        assert pool.average_input(EMPTY_IDS) == 0.0
        assert pool.average_context(EMPTY_IDS, True) == 0.0
        assert pool.max_output_len(EMPTY_IDS) == 0

    def test_make_pool_selects_backend(self):
        from repro.core.distributions import SequenceDistribution
        from repro.workloads.trace import WorkloadTrace

        dist = SequenceDistribution.empirical([4, 5], name="d")
        trace = WorkloadTrace(
            "t", (RequestSpec(0, 4, 2, 0.0),), dist, dist
        )
        assert isinstance(make_pool(trace, columnar=True), RequestPool)
        assert isinstance(make_pool(trace, columnar=False), ListPool)


class TestRequestView:
    def test_view_reads_and_writes_columns(self):
        pool = RequestPool()
        (rid,) = pool.admit_specs([RequestSpec(11, 6, 3, 0.25)]).tolist()
        view = pool.view(rid)
        assert isinstance(view, RequestView)
        assert view.request_id == 11
        assert view.input_len == 6
        assert view.output_len == 3
        assert view.arrival_s == 0.25
        assert view.remaining == 3
        assert not view.done
        assert not view.started
        assert view.latency_s == -1.0
        assert view.context_length(decoder_only=True) == 6
        assert view.context_length(decoder_only=False) == 1

        view.advance(2)
        assert pool.generated[rid] == 2
        assert view.remaining == 1
        assert view.context_length(decoder_only=True) == 8

        view.encode_start_s = 1.0
        view.admitted_cycle = 4
        view.advance()
        view.finish_s = 3.5
        assert view.done
        assert pool.done[rid]
        assert pool.admitted_cycle[rid] == 4
        assert view.latency_s == pytest.approx(2.5)
        # The columns saw every write.
        latencies, _, _, tokens = pool.completion_arrays(
            np.array([rid], dtype=np.int64)
        )
        assert latencies[0] == pytest.approx(2.5)
        assert tokens == 3

    def test_list_pool_view_is_the_state(self):
        pool = ListPool()
        (rid,) = pool.admit_specs([RequestSpec(0, 4, 2, 0.0)]).tolist()
        assert pool.view(rid) is pool.states[rid]


class TestEventCoreReductionsParity:
    """ListPool parity for the reductions the event serving core added."""

    @given(
        lens=REQUESTS,
        seed=st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_arrival_order_and_total_tokens_match_reference(self, lens, seed):
        rng = np.random.default_rng(seed)
        # Coarse arrival grid so exact ties are common: the order must
        # fall back to request id deterministically on both backends.
        arrivals = rng.choice([0.0, 0.25, 0.25, 0.5, 1.0], size=len(lens))
        specs = [
            RequestSpec(100 + i, input_len, output_len, float(arrival))
            for i, ((input_len, output_len), arrival) in enumerate(
                zip(lens, arrivals)
            )
        ]
        columnar = RequestPool()
        columnar.admit_specs(specs)
        reference = ListPool()
        reference.admit_specs(specs)

        np.testing.assert_array_equal(
            columnar.arrival_order(), reference.arrival_order()
        )
        ids = columnar.ids()
        subset = ids[rng.random(ids.size) < 0.5]
        np.testing.assert_array_equal(
            columnar.total_tokens(subset), reference.total_tokens(subset)
        )
        np.testing.assert_array_equal(
            columnar.total_tokens(EMPTY_IDS), reference.total_tokens(EMPTY_IDS)
        )

    @given(lens=REQUESTS, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_from_arrays_matches_spec_admission(self, lens, seed):
        rng = np.random.default_rng(seed)
        inputs = np.array([i for i, _ in lens], dtype=np.int64)
        outputs = np.array([o for _, o in lens], dtype=np.int64)
        arrivals = np.round(rng.random(len(lens)) * 4, 2)
        request_ids = np.arange(len(lens), dtype=np.int64) + 100

        from_arrays = RequestPool.from_arrays(
            inputs, outputs, arrivals, request_ids
        )
        specs = [
            RequestSpec(100 + i, int(inp), int(out), float(arr))
            for i, (inp, out, arr) in enumerate(zip(inputs, outputs, arrivals))
        ]
        from_specs = RequestPool()
        from_specs.admit_specs(specs)
        for column in (
            "request_id", "input_len", "output_len", "arrival_s",
            "generated", "encode_start_s", "encode_finish_s", "finish_s",
            "admitted_cycle", "done",
        ):
            np.testing.assert_array_equal(
                getattr(from_arrays, column), getattr(from_specs, column)
            )

        reference = ListPool.from_arrays(inputs, outputs, arrivals, request_ids)
        assert reference.size == from_arrays.size
        np.testing.assert_array_equal(
            reference.input_lens(reference.ids()),
            from_arrays.input_lens(from_arrays.ids()),
        )
        np.testing.assert_array_equal(
            reference.arrival_order(), from_arrays.arrival_order()
        )

    def test_from_arrays_defaults_and_validation(self):
        pool = RequestPool.from_arrays(
            np.array([3, 5], dtype=np.int64), np.array([2, 4], dtype=np.int64)
        )
        np.testing.assert_array_equal(pool.request_id, [0, 1])
        np.testing.assert_array_equal(pool.arrival_s, [0.0, 0.0])

        ones = np.ones(2, dtype=np.int64)
        with pytest.raises(ValueError):
            RequestPool.from_arrays(ones, np.ones(3, dtype=np.int64))
        with pytest.raises(ValueError):
            RequestPool.from_arrays(np.zeros(2, dtype=np.int64), ones)
        with pytest.raises(ValueError):
            RequestPool.from_arrays(ones, ones, np.array([-0.5, 0.0]))
        with pytest.raises(ValueError):
            RequestPool.from_arrays(ones, ones, np.zeros(3))
        with pytest.raises(ValueError):
            RequestPool.from_arrays(ones, ones, None, np.arange(3))

    def test_from_arrays_copies_inputs(self):
        inputs = np.array([3, 5], dtype=np.int64)
        outputs = np.array([2, 4], dtype=np.int64)
        arrivals = np.array([0.0, 1.0])
        pool = RequestPool.from_arrays(inputs, outputs, arrivals)
        inputs[0] = 99
        arrivals[0] = 99.0
        assert pool.input_len[0] == 3
        assert pool.arrival_s[0] == 0.0

    @given(lens=REQUESTS, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_reset_progress_matches_reference(self, lens, seed):
        """`reset_progress` returns a consumed pool to the just-admitted
        state on both backends (static columns intact, progress cleared)."""
        rng = np.random.default_rng(seed)
        specs = [
            RequestSpec(100 + i, input_len, output_len, 0.0)
            for i, (input_len, output_len) in enumerate(lens)
        ]
        pools = []
        for backend in (RequestPool, ListPool):
            pool = backend()
            ids = pool.admit_specs(specs)
            # Consume the pool partway: stamp, advance some to completion.
            pool.set_admitted_cycle(ids, 3)
            pool.stamp_encode_start(ids, 1.0)
            subset = ids[rng.random(ids.size) < 0.7]
            for rid in subset.tolist():
                one = np.array([rid], dtype=np.int64)
                pool.advance(one, pool.output_len_of(rid))
                pool.stamp_finish(one, 2.0)
            pool.reset_progress()
            pools.append(pool)

        columnar, reference = pools
        assert columnar.done_count == reference.done_count == 0
        assert columnar.alive_count == len(specs)
        ids = columnar.ids()
        np.testing.assert_array_equal(
            columnar.done_mask(ids), reference.done_mask(ids)
        )
        np.testing.assert_array_equal(columnar.compact(ids), ids)
        assert columnar.remaining_tokens(ids) == reference.remaining_tokens(ids)
        for rid in ids.tolist():
            assert columnar.view(rid).generated == 0
            assert reference.view(rid).generated == 0
            assert columnar.view(rid).encode_start_s == -1.0
            assert columnar.view(rid).finish_s == -1.0
            assert columnar.view(rid).admitted_cycle == -1
            assert columnar.input_len_of(rid) == reference.input_len_of(rid)


class TestDecodeRunParity:
    """Bulk ``decode_run`` against its step-by-step reference.

    ``RequestPool.decode_run`` vectorizes ``iterations`` early-terminating
    decode steps into one histogram/argsort pass; ``ListPool.decode_run``
    *is* the historical per-iteration loop.  The serving fast paths lean on
    the two being indistinguishable -- per-iteration summaries, side
    effects on the pool, everything.
    """

    @given(
        lens=REQUESTS,
        seed=st.integers(0, 2 ** 32 - 1),
        decoder_only=st.booleans(),
        iterations=st.integers(1, 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_decode_run_matches_stepwise_reference(
        self, lens, seed, decoder_only, iterations
    ):
        columnar, reference = _both(lens)
        rng = np.random.default_rng(seed)
        ids = columnar.ids()
        # Pre-advance a random subset so runs start mid-generation (some
        # members may already be done and must be compacted away).
        for rid in ids[rng.random(ids.size) < 0.5].tolist():
            steps = int(rng.integers(1, columnar.output_len_of(rid) + 1))
            one = np.array([rid], dtype=np.int64)
            columnar.advance(one, steps)
            reference.advance(one, steps)
        group = ids[rng.random(ids.size) < 0.8]

        run_col = columnar.decode_run(group, decoder_only, iterations)
        run_ref = reference.decode_run(group, decoder_only, iterations)

        if run_ref is None:
            assert run_col is None
        else:
            assert run_col is not None
            np.testing.assert_array_equal(run_col.batches, run_ref.batches)
            np.testing.assert_array_equal(
                run_col.context_tokens, run_ref.context_tokens
            )
            np.testing.assert_array_equal(run_col.first_ids, run_ref.first_ids)
            assert len(run_col.completed) == len(run_ref.completed)
            for comp_col, comp_ref in zip(run_col.completed, run_ref.completed):
                np.testing.assert_array_equal(comp_col, comp_ref)
            np.testing.assert_array_equal(
                run_col.completed_counts, run_ref.completed_counts
            )
            np.testing.assert_array_equal(
                run_col.completed_context, run_ref.completed_context
            )

        # The pools ended the run in the same state.
        np.testing.assert_array_equal(
            columnar.generated,
            np.asarray([s.generated for s in reference.states], dtype=np.int64),
        )
        np.testing.assert_array_equal(
            columnar.done, np.asarray([s.done for s in reference.states])
        )
        assert columnar.done_count == reference.done_count

    @given(lens=REQUESTS, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_decode_run_equals_iterated_decode_steps(self, lens, seed):
        """One bulk run == the same pool stepped one iteration at a time."""
        rng = np.random.default_rng(seed)
        iterations = int(rng.integers(1, 12))
        bulk, stepped = _both(lens)
        # ListPool here plays the role of "same backend, stepped": drive a
        # second RequestPool through decode_step instead.
        stepped = RequestPool()
        stepped.admit_specs(_specs(lens))
        group = bulk.ids()

        run = bulk.decode_run(group, True, iterations)
        steps = []
        for _ in range(iterations):
            step = stepped.decode_step(group, True, True)
            if step is None:
                break
            steps.append(step)

        if run is None:
            assert not steps
            return
        assert len(steps) == len(run.batches)
        np.testing.assert_array_equal(
            run.batches, [s.batch for s in steps]
        )
        np.testing.assert_array_equal(
            run.context_tokens, [s.context_tokens for s in steps]
        )
        np.testing.assert_array_equal(
            run.first_ids, steps[0].first_ids
        )
        for comp_run, step in zip(run.completed, steps):
            np.testing.assert_array_equal(comp_run, step.completed_ids)
        np.testing.assert_array_equal(bulk.generated, stepped.generated)
        np.testing.assert_array_equal(bulk.done, stepped.done)

    @pytest.mark.parametrize("backend", [RequestPool, ListPool])
    def test_decode_run_guards(self, backend):
        pool = backend()
        pool.admit_specs(_specs([(4, 3)]))
        with pytest.raises(ValueError):
            pool.decode_run(pool.ids(), True, 0)
        assert pool.decode_run(EMPTY_IDS, True, 4) is None

    @pytest.mark.parametrize("backend", [RequestPool, ListPool])
    def test_request_ids_of_gathers_trace_ids(self, backend):
        pool = backend()
        ids = pool.admit_specs(_specs([(4, 3), (2, 5), (8, 1)]))
        np.testing.assert_array_equal(
            pool.request_ids_of(ids[::-1]), [102, 101, 100]
        )
        assert pool.request_ids_of(ids).dtype == np.int64

"""Tests for the contiguous and paged KV-cache managers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.kv_manager import ContiguousKVCache, KVCacheError, PagedKVCache
from repro.models.catalog import OPT_13B


def _contiguous(capacity_tokens: int = 10000) -> ContiguousKVCache:
    per_token = OPT_13B.kv_bytes_per_token_per_layer() * OPT_13B.num_decoder_layers
    return ContiguousKVCache(
        model=OPT_13B,
        num_layers=OPT_13B.num_decoder_layers,
        capacity_bytes=capacity_tokens * per_token,
    )


def _paged(capacity_tokens: int = 10000, block: int = 16) -> PagedKVCache:
    per_token = OPT_13B.kv_bytes_per_token_per_layer() * OPT_13B.num_decoder_layers
    return PagedKVCache(
        model=OPT_13B,
        num_layers=OPT_13B.num_decoder_layers,
        capacity_bytes=capacity_tokens * per_token,
        block_tokens=block,
    )


class TestContiguousCache:
    def test_reserve_and_release(self):
        cache = _contiguous()
        cache.reserve(1, 512)
        assert cache.used_bytes == pytest.approx(cache.bytes_for_tokens(512))
        freed = cache.release(1)
        assert freed == pytest.approx(cache.bytes_for_tokens(512))
        assert cache.used_bytes == 0.0

    def test_double_reservation_rejected(self):
        cache = _contiguous()
        cache.reserve(1, 10)
        with pytest.raises(KVCacheError):
            cache.reserve(1, 10)

    def test_over_capacity_rejected(self):
        cache = _contiguous(capacity_tokens=100)
        with pytest.raises(KVCacheError):
            cache.reserve(1, 101)

    def test_release_unknown_rejected(self):
        with pytest.raises(KVCacheError):
            _contiguous().release(42)

    def test_peak_tracks_high_water_mark(self):
        cache = _contiguous()
        cache.reserve(1, 500)
        cache.reserve(2, 500)
        cache.release(1)
        assert cache.peak_bytes == pytest.approx(cache.bytes_for_tokens(1000))

    def test_compaction_bytes_equals_live_bytes(self):
        cache = _contiguous()
        cache.reserve(1, 100)
        cache.reserve(2, 200)
        cache.release(1)
        assert cache.compaction_bytes() == pytest.approx(cache.bytes_for_tokens(200))


class TestPagedCache:
    def test_blocks_needed_rounds_up(self):
        cache = _paged(block=16)
        assert cache.blocks_needed(1) == 1
        assert cache.blocks_needed(16) == 1
        assert cache.blocks_needed(17) == 2
        assert cache.blocks_needed(0) == 0

    def test_ensure_grows_monotonically(self):
        cache = _paged()
        cache.ensure(1, 10)
        used = cache.used_blocks
        cache.ensure(1, 5)  # shrinking request is a no-op
        assert cache.used_blocks == used
        cache.ensure(1, 40)
        assert cache.used_blocks > used

    def test_exhaustion_raises(self):
        cache = _paged(capacity_tokens=64, block=16)
        cache.ensure(1, 64)
        with pytest.raises(KVCacheError):
            cache.ensure(2, 16)

    def test_release_frees_blocks(self):
        cache = _paged()
        cache.ensure(1, 100)
        cache.release(1)
        assert cache.used_blocks == 0
        with pytest.raises(KVCacheError):
            cache.release(1)

    def test_paged_wastes_less_than_reservation(self):
        """The PagedAttention motivation: on-demand blocks beat max-length
        reservations for the same workload."""
        contiguous = _contiguous(capacity_tokens=4096)
        paged = _paged(capacity_tokens=4096)
        # 8 requests that will actually generate ~64 tokens but could reach 512.
        for rid in range(8):
            contiguous.reserve(rid, 512)
            paged.ensure(rid, 64)
        assert paged.used_bytes < contiguous.used_bytes

    @given(
        tokens=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_used_blocks_never_exceed_total(self, tokens):
        cache = _paged(capacity_tokens=100000)
        for rid, t in enumerate(tokens):
            cache.ensure(rid, t)
        assert 0 <= cache.used_blocks <= cache.total_blocks
        assert cache.peak_bytes >= cache.used_bytes - 1e-9

"""Property tests for the unified iteration-graph execution engine.

The engine owns micro-batch splitting, per-stage task chaining, compaction
and pricing for every driver in the repo, so its invariants are load-bearing:

* micro-batch splits partition the pool (nothing lost, nothing duplicated),
* task dependency graphs are acyclic and chains traverse stages in pipeline
  order,
* early-termination compaction never resurrects finished requests, and
* batched pricing is bit-identical to the scalar reference path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.engine.batching import split_ids, split_into_micro_batches
from repro.engine.execution import (
    DECODE,
    ENCODE,
    ExecutionEngine,
    StageWork,
    price_work,
)
from repro.engine.pool import RequestPool
from repro.engine.request import RequestState
from repro.engine.timeline import Timeline
from repro.workloads.trace import RequestSpec


def make_requests(output_lens, input_len=32):
    return [
        RequestState(spec=RequestSpec(i, input_len, out, 0.0))
        for i, out in enumerate(output_lens)
    ]


def make_request_pool(output_lens, input_len=32) -> RequestPool:
    pool = RequestPool()
    pool.admit_specs(
        RequestSpec(i, input_len, out, 0.0) for i, out in enumerate(output_lens)
    )
    return pool


# ---------------------------------------------------------------------------
# Micro-batch splitting partitions the pool
# ---------------------------------------------------------------------------


class TestMicroBatchPartition:
    @given(
        num_requests=st.integers(min_value=0, max_value=200),
        num_micro_batches=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_partitions_the_pool(self, num_requests, num_micro_batches):
        pool = make_requests([1] * num_requests)
        groups = split_into_micro_batches(pool, num_micro_batches)
        # Concatenation restores the pool exactly: order kept, no request
        # lost or duplicated, no empty groups emitted.
        flattened = [r for group in groups for r in group]
        assert flattened == pool
        assert len({id(r) for r in flattened}) == len(pool)
        assert all(group for group in groups)
        assert len(groups) <= num_micro_batches
        # Near-even: group sizes differ by at most one.
        if groups:
            sizes = [len(g) for g in groups]
            assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Planned graphs: acyclic, stage-ordered chains
# ---------------------------------------------------------------------------


def _run_plan(simulator, output_lens, micro_batches, decode_iterations):
    """Build one encode phase + decode iterations and return the timeline."""
    config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=4)
    placement = simulator.build_placement(config)
    timeline = Timeline()
    pool = make_request_pool(output_lens)
    engine = ExecutionEngine(
        timeline, simulator.profile, placement, pool, decoder_only=True
    )
    plan = engine.plan()
    groups = split_ids(pool.ids(), micro_batches)
    encode_last = engine.encode_phase(plan, placement.stages, groups)
    prev_last: dict[int, object] = {}
    for iteration in range(decode_iterations):
        outcome = engine.decode_iteration(
            plan,
            placement.stages,
            groups,
            first_deps=encode_last if iteration == 0 else [],
            prev_last=prev_last,
        )
        if not outcome.any_alive:
            break
    engine.commit(plan)
    return timeline, placement, engine, pool


class TestGraphShape:
    @given(
        output_lens=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=24
        ),
        micro_batches=st.integers(min_value=1, max_value=6),
        decode_iterations=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_dependencies_acyclic_and_chains_stage_ordered(
        self, tiny_simulator, output_lens, micro_batches, decode_iterations
    ):
        timeline, placement, _, _ = _run_plan(
            tiny_simulator, output_lens, micro_batches, decode_iterations
        )
        stage_order = {s.stage_id: i for i, s in enumerate(placement.stages)}
        tasks = timeline.tasks
        for task in tasks:
            # Acyclic by construction: every dependency points backwards.
            assert all(0 <= dep < task.task_id for dep in task.deps)
            # A single-dep task of the same phase either continues its chain
            # (the pipeline's next stage) or starts a new chain at stage 0
            # (its dep being the previous iteration's tail) -- never a
            # mid-pipeline jump.
            if len(task.deps) == 1:
                prev = tasks[task.deps[0]]
                if prev.tag == task.tag and task.tag in ("encode", "decode"):
                    order = stage_order[task.stage]
                    assert order in (stage_order[prev.stage] + 1, 0)
        # The timeline schedules without error (a cycle would deadlock).
        timeline.run()
        assert all(t.finish_s >= t.start_s >= 0 for t in tasks)

    @given(
        output_lens=st.lists(
            st.integers(min_value=1, max_value=10), min_size=1, max_size=20
        ),
        micro_batches=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_compaction_never_resurrects_finished_requests(
        self, tiny_simulator, output_lens, micro_batches
    ):
        timeline, _, engine, pool = _run_plan(
            tiny_simulator, output_lens, micro_batches, decode_iterations=64
        )
        # Every request generated exactly its output length: nothing kept
        # decoding after completion, nothing stopped short.
        assert np.array_equal(pool.generated, pool.output_len)
        # Each request completes exactly once in the bookkeeping.
        completed_ids = np.concatenate(
            [ids for ids, _ in engine.bookkeeping.completions]
        )
        assert sorted(completed_ids.tolist()) == pool.ids().tolist()
        # Compaction tasks always extend a decode chain, never precede one.
        tasks = timeline.tasks
        for task in tasks:
            if task.tag == "compaction":
                assert len(task.deps) == 1
                assert tasks[task.deps[0]].tag in ("decode", "compaction")


# ---------------------------------------------------------------------------
# Pricing parity: batched == scalar, bit for bit
# ---------------------------------------------------------------------------


class TestPricingParity:
    @given(
        batch=st.floats(min_value=0.0, max_value=128.0),
        length=st.floats(min_value=1.0, max_value=512.0),
        overhead=st.sampled_from([0.0, 0.001]),
    )
    @settings(max_examples=60, deadline=None)
    def test_price_work_matches_analytical_stage_times(
        self, tiny_simulator, batch, length, overhead
    ):
        """The engine's pricing is the analytical cost model, bit for bit.

        ``price_work`` must never drift from
        :func:`repro.core.analytical.encode_stage_time` /
        :func:`~repro.core.analytical.decode_stage_time` -- that shared
        formula is exactly what makes the simulator's estimates and the
        engine's replays one cost model.
        """
        from repro.core.analytical import decode_stage_time, encode_stage_time

        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=4)
        placement = tiny_simulator.build_placement(config)
        profile = tiny_simulator.profile
        work = []
        expected = []
        for stage in placement.stages:
            spans = placement.stage_spans_nodes(stage)
            work.append(
                StageWork(ENCODE, stage.encoder_layers, stage.tp_degree,
                          spans, batch, length)
            )
            base = encode_stage_time(profile, placement, stage, batch, length)
            expected.append(base + (overhead if base > 0 else 0.0))
            work.append(
                StageWork(DECODE, stage.decoder_layers, stage.tp_degree,
                          spans, batch, length)
            )
            base = decode_stage_time(profile, placement, stage, batch, length)
            expected.append(base + (overhead if base > 0 else 0.0))
        # Replicate past the small-plan threshold so the batched call truly
        # exercises the vectorized lookups.
        work = work * 4
        expected = expected * 4
        for batched in (False, True):
            priced = price_work(profile, work, overhead, batched=batched)
            assert priced.tolist() == expected

    @given(
        items=st.lists(
            st.tuples(
                st.sampled_from([ENCODE, DECODE]),
                st.integers(min_value=0, max_value=8),     # layers
                st.sampled_from([1, 2, 4]),                # tp degree
                st.booleans(),                             # spans nodes
                st.floats(min_value=0.0, max_value=128.0), # batch
                st.floats(min_value=1.0, max_value=512.0), # length
            ),
            min_size=1,
            max_size=64,
        ),
        overhead=st.sampled_from([0.0, 0.0015]),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_pricing_bit_identical_to_scalar(
        self, tiny_profile, items, overhead
    ):
        work = [StageWork(*item) for item in items]
        scalar = price_work(tiny_profile, work, overhead, batched=False)
        batched = price_work(tiny_profile, work, overhead, batched=True)
        assert scalar.tolist() == batched.tolist()

    def test_mixed_iteration_duration_sums_components(self, tiny_simulator):
        """A mixed iteration's stage duration is the ordered component sum."""
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=4)
        placement = tiny_simulator.build_placement(config)
        timeline = Timeline()
        pool = make_request_pool([4, 4, 3])
        engine = ExecutionEngine(
            timeline, tiny_simulator.profile, placement, pool,
            decoder_only=True, overhead_s=0.001,
        )
        alive = pool.ids()[:2]
        pool.advance(alive)  # mid-generation pool
        admitted = pool.ids()[2:]
        plan = engine.plan()
        outcome = engine.mixed_iteration(plan, placement.stages, alive, admitted)
        engine.commit(plan)
        task = timeline.tasks[0]
        items = [
            StageWork(
                DECODE,
                placement.stages[0].decoder_layers,
                placement.stages[0].tp_degree,
                placement.stage_spans_nodes(placement.stages[0]),
                2,
                pool.average_context(alive, True)
                # context advanced by mixed_iteration itself:
                - 1.0,
            ),
            StageWork(
                ENCODE,
                placement.stages[0].encoder_layers,
                placement.stages[0].tp_degree,
                placement.stage_spans_nodes(placement.stages[0]),
                1.0,
                pool.input_len_of(int(admitted[0])),
            ),
        ]
        expected = price_work(tiny_simulator.profile, items, 0.001)
        assert task.duration_s == pytest.approx(float(expected.sum()), rel=1e-12)
        assert outcome.completed.size == 0

"""Property-style tests for the KV caches under online churn.

Online serving interleaves admissions (alloc), per-token growth and early
terminations (free) across iterations; these tests drive both cache flavours
through randomized churn sequences and assert the allocator invariants the
online drivers rely on: no block/byte leaks, exact capacity enforcement, and
consistent accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.kv_manager import ContiguousKVCache, KVCacheError, PagedKVCache
from repro.models.spec import Architecture, ModelSpec


@pytest.fixture(scope="module")
def kv_model() -> ModelSpec:
    return ModelSpec(
        name="KV-Tiny",
        architecture=Architecture.DECODER_ONLY,
        num_layers=4,
        hidden_size=256,
        num_heads=4,
        vocab_size=1024,
    )


def paged_cache(model: ModelSpec, blocks: int, block_tokens: int = 16) -> PagedKVCache:
    block_bytes = block_tokens * 2 * model.kv_bytes_per_token_per_layer()
    return PagedKVCache(
        model=model,
        num_layers=2,
        capacity_bytes=blocks * block_bytes,
        block_tokens=block_tokens,
    )


def contiguous_cache(model: ModelSpec, tokens: int) -> ContiguousKVCache:
    per_token = 2 * model.kv_bytes_per_token_per_layer()
    return ContiguousKVCache(model=model, num_layers=2, capacity_bytes=tokens * per_token)


# -- churn sequences ---------------------------------------------------------------

churn_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),      # request id
        st.sampled_from(["admit", "grow", "free"]),  # action
        st.integers(min_value=1, max_value=64),      # tokens
    ),
    min_size=1,
    max_size=120,
)


class TestPagedChurn:
    @given(steps=churn_steps)
    @settings(max_examples=60, deadline=None)
    def test_interleaved_alloc_free_never_leaks(self, steps):
        model = ModelSpec(
            name="KV-Tiny",
            architecture=Architecture.DECODER_ONLY,
            num_layers=4,
            hidden_size=256,
            num_heads=4,
            vocab_size=1024,
        )
        cache = paged_cache(model, blocks=32)
        live: dict[int, int] = {}  # request id -> tokens ensured
        for request_id, action, tokens in steps:
            if action == "admit" and request_id not in live:
                if cache.can_admit(tokens):
                    cache.ensure(request_id, tokens)
                    live[request_id] = tokens
                else:
                    with pytest.raises(KVCacheError):
                        cache.ensure(request_id, tokens)
            elif action == "grow" and request_id in live:
                target = live[request_id] + tokens
                growth = cache.blocks_needed(target) - cache.blocks_needed(
                    live[request_id]
                )
                if growth <= cache.free_blocks:
                    cache.ensure(request_id, target)
                    live[request_id] = target
                else:
                    with pytest.raises(KVCacheError):
                        cache.ensure(request_id, target)
            elif action == "free" and request_id in live:
                freed = cache.release(request_id)
                assert freed == cache.blocks_needed(live.pop(request_id))
            # Accounting invariants hold after every step.
            expected = sum(cache.blocks_needed(t) for t in live.values())
            assert cache.used_blocks == expected
            assert cache.free_blocks == cache.total_blocks - expected
            assert 0 <= cache.used_blocks <= cache.total_blocks
            assert cache.peak_bytes >= cache.used_bytes - 1e-9
        # Draining every live request returns the cache to empty: no leaks.
        for request_id in list(live):
            cache.release(request_id)
        assert cache.used_blocks == 0
        assert cache.free_blocks == cache.total_blocks

    def test_error_exactly_at_capacity(self, kv_model):
        cache = paged_cache(kv_model, blocks=4, block_tokens=16)
        cache.ensure(0, 64)  # exactly 4 blocks: fits
        assert cache.free_blocks == 0
        with pytest.raises(KVCacheError):
            cache.ensure(1, 1)  # one more block: exact overflow point
        assert cache.can_admit(0)
        assert not cache.can_admit(1)
        cache.release(0)
        cache.ensure(1, 1)  # fits again after the free

    def test_shrink_requests_are_noops(self, kv_model):
        cache = paged_cache(kv_model, blocks=8)
        cache.ensure(0, 40)
        used = cache.used_blocks
        cache.ensure(0, 10)  # ensure() never shrinks
        assert cache.used_blocks == used

    def test_release_unknown_request(self, kv_model):
        with pytest.raises(KVCacheError):
            paged_cache(kv_model, blocks=8).release(99)


class TestContiguousChurn:
    @given(steps=churn_steps)
    @settings(max_examples=60, deadline=None)
    def test_interleaved_reserve_release_never_leaks(self, steps):
        model = ModelSpec(
            name="KV-Tiny",
            architecture=Architecture.DECODER_ONLY,
            num_layers=4,
            hidden_size=256,
            num_heads=4,
            vocab_size=1024,
        )
        cache = contiguous_cache(model, tokens=256)
        live: set[int] = set()
        for request_id, action, tokens in steps:
            if action == "admit" and request_id not in live:
                needed = cache.bytes_for_tokens(tokens)
                if needed <= cache.free_bytes + 1e-9:
                    cache.reserve(request_id, tokens)
                    live.add(request_id)
                else:
                    with pytest.raises(KVCacheError):
                        cache.reserve(request_id, tokens)
            elif action == "grow" and request_id in live:
                # Contiguous slots are fixed: re-reserving must fail.
                with pytest.raises(KVCacheError):
                    cache.reserve(request_id, tokens)
            elif action == "free" and request_id in live:
                assert cache.release(request_id) > 0
                live.remove(request_id)
            assert cache.used_bytes <= cache.capacity_bytes + 1e-9
            assert cache.peak_bytes >= cache.used_bytes - 1e-9
        for request_id in list(live):
            cache.release(request_id)
        assert cache.used_bytes == 0
        assert cache.free_bytes == pytest.approx(cache.capacity_bytes)

    def test_error_exactly_at_capacity(self, kv_model):
        cache = contiguous_cache(kv_model, tokens=100)
        cache.reserve(0, 100)
        with pytest.raises(KVCacheError):
            cache.reserve(1, 1)
        cache.release(0)
        cache.reserve(1, 100)

    def test_compaction_tracks_live_bytes(self, kv_model):
        cache = contiguous_cache(kv_model, tokens=100)
        cache.reserve(0, 40)
        cache.reserve(1, 40)
        cache.release(0)
        assert cache.compaction_bytes() == pytest.approx(cache.bytes_for_tokens(40))

"""Tests for runtime request state."""

import pytest

from repro.engine.request import RequestState
from repro.workloads.trace import RequestSpec


def _state(input_len=16, output_len=4) -> RequestState:
    return RequestState(spec=RequestSpec(0, input_len=input_len, output_len=output_len))


class TestRequestState:
    def test_initial_state(self):
        state = _state()
        assert state.remaining == 4
        assert not state.done
        assert not state.started
        assert state.latency_s == -1.0

    def test_advance_to_completion(self):
        state = _state(output_len=3)
        state.advance()
        state.advance(2)
        assert state.done
        assert state.remaining == 0

    def test_advancing_past_length_rejected(self):
        state = _state(output_len=2)
        state.advance(2)
        with pytest.raises(ValueError):
            state.advance()

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            _state().advance(-1)

    def test_latency_from_timestamps(self):
        state = _state(output_len=1)
        state.encode_start_s = 1.0
        state.advance()
        state.finish_s = 3.5
        assert state.latency_s == pytest.approx(2.5)

    def test_context_length_decoder_only(self):
        state = _state(input_len=10, output_len=5)
        assert state.context_length(decoder_only=True) == 10
        state.advance(2)
        assert state.context_length(decoder_only=True) == 12

    def test_context_length_encoder_decoder(self):
        state = _state(input_len=10, output_len=5)
        assert state.context_length(decoder_only=False) == 1
        state.advance(3)
        assert state.context_length(decoder_only=False) == 3

"""Tests for run-result metrics."""

import pytest

from repro.engine.metrics import RunResult, collect_result
from repro.engine.request import RequestState
from repro.workloads.trace import RequestSpec


def _completed_request(rid: int, latency: float, output_len: int = 8) -> RequestState:
    state = RequestState(spec=RequestSpec(rid, input_len=16, output_len=output_len))
    state.encode_start_s = 1.0
    state.generated = output_len
    state.finish_s = 1.0 + latency
    return state


class TestCollectResult:
    def test_throughput_and_latency(self):
        requests = [_completed_request(i, latency=2.0 + i) for i in range(10)]
        result = collect_result("test", requests, makespan_s=20.0)
        assert result.throughput_seq_per_s == pytest.approx(0.5)
        assert result.throughput_tokens_per_s == pytest.approx(80 / 20.0)
        assert result.mean_latency_s == pytest.approx(6.5)
        assert result.max_latency_s == pytest.approx(11.0)

    def test_unfinished_request_rejected(self):
        state = RequestState(spec=RequestSpec(0, input_len=4, output_len=4))
        with pytest.raises(ValueError):
            collect_result("test", [state], makespan_s=1.0)

    def test_percentiles(self):
        requests = [_completed_request(i, latency=float(i)) for i in range(100)]
        result = collect_result("test", requests, makespan_s=100.0)
        assert result.latency_percentile(50) == pytest.approx(49.5, abs=1.0)
        assert result.p99_latency_s >= result.latency_percentile(90)
        with pytest.raises(ValueError):
            result.latency_percentile(101)

    def test_skip_warmup_excludes_leading_requests(self):
        slow = [_completed_request(i, latency=100.0) for i in range(5)]
        fast = [_completed_request(5 + i, latency=1.0) for i in range(20)]
        result = collect_result("test", slow + fast, makespan_s=10.0, warmup_requests=5)
        assert result.latency_percentile(99, skip_warmup=True) == pytest.approx(1.0)
        assert result.latency_percentile(99) > 50.0

    def test_reference_length_latency_filters_long_outputs(self):
        short = [_completed_request(i, latency=2.0, output_len=8) for i in range(10)]
        long = [_completed_request(10 + i, latency=50.0, output_len=100) for i in range(2)]
        result = collect_result("test", short + long, makespan_s=10.0)
        assert result.reference_length_latency(16) == pytest.approx(2.0)
        assert result.max_latency_s == pytest.approx(50.0)

    def test_steady_state_throughput_fallback_for_small_traces(self):
        requests = [_completed_request(i, latency=1.0) for i in range(5)]
        result = collect_result("test", requests, makespan_s=5.0)
        assert result.steady_state_throughput() == pytest.approx(result.throughput_seq_per_s)

    def test_stage_time_stats(self):
        requests = [_completed_request(0, latency=1.0)]
        result = collect_result(
            "test",
            requests,
            makespan_s=1.0,
            stage_times={"decode": [1.0, 1.1, 0.9, 1.0]},
        )
        stats = result.stage_time_stats("decode")
        assert stats["mean"] == pytest.approx(1.0)
        assert stats["p99_range_pct"] > 0
        assert result.stage_time_stats("encode")["mean"] == 0.0

    def test_empty_result_is_safe(self):
        result = RunResult(
            system="x", makespan_s=0.0, num_requests=0,
            total_generated_tokens=0, latencies_s=(),
        )
        assert result.throughput_seq_per_s == 0.0
        assert result.p99_latency_s == 0.0
        assert result.mean_latency_s == 0.0

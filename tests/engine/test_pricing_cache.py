"""Property tests for the memoized pricing cache.

The serving hot loop re-prices near-identical work items every cycle, so the
exact-key :class:`PricingCache` sits directly on the bit-parity critical path.
Its contract, pinned here:

* cache-on, cache-off and ``batched=False`` pricing are bit-identical across
  arbitrary plans (a hit returns exactly the float a fresh lookup would),
* repeat pricing of the same plan is served entirely from the cache, still
  bit-identically,
* one cache shared by engines over *different* :class:`ProfileTable`s never
  leaks prices across them (keys carry the profile's identity token), and
* the cache stays bounded and its counters stay consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import XProfiler
from repro.engine.execution import (
    _PRICING_CACHE_MAX_PLAN_ITEMS,
    DECODE,
    ENCODE,
    PricingCache,
    StageWork,
    price_work,
)
from repro.hardware.cluster import a40_cluster


work_items = st.lists(
    st.tuples(
        st.sampled_from([ENCODE, DECODE]),
        st.integers(min_value=0, max_value=8),     # layers
        st.sampled_from([1, 2, 4]),                # tp degree
        st.booleans(),                             # spans nodes
        st.floats(min_value=0.0, max_value=128.0),  # batch
        st.floats(min_value=1.0, max_value=512.0),  # length
    ),
    min_size=0,
    max_size=40,
)


def to_work(items):
    return [StageWork(*item) for item in items]


class TestCacheParity:
    """Memoized pricing must never drift from the reference paths."""

    @given(items=work_items, overhead=st.sampled_from([0.0, 0.0015]))
    @settings(max_examples=60, deadline=None)
    def test_cache_on_off_and_scalar_bit_identical(
        self, tiny_profile, items, overhead
    ):
        work = to_work(items)
        scalar = price_work(tiny_profile, work, overhead, batched=False)
        batched = price_work(tiny_profile, work, overhead, batched=True)
        cached = price_work(
            tiny_profile, work, overhead, batched=True, cache=PricingCache()
        )
        np.testing.assert_array_equal(scalar, batched)
        np.testing.assert_array_equal(scalar, cached)

    @given(
        items=work_items,
        overhead=st.sampled_from([0.0, 0.0015]),
        small=st.sampled_from([0, 4, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_warm_cache_replays_bit_identically(
        self, tiny_profile, items, overhead, small
    ):
        """A fully warm cache serves the same plan from hits alone.

        Swept across ``small_plan_items`` so both the scalar and the batched
        miss-fill paths are exercised.
        """
        work = to_work(items)
        cache = PricingCache()
        cold = price_work(
            tiny_profile, work, overhead, cache=cache, small_plan_items=small
        )
        misses_after_cold = cache.misses
        warm = price_work(
            tiny_profile, work, overhead, cache=cache, small_plan_items=small
        )
        np.testing.assert_array_equal(cold, warm)
        if len(work) >= small:
            # The replay added no misses: every item was an exact-key hit.
            assert cache.misses == misses_after_cold
            assert cache.hits >= len(work)
        else:
            # Sub-crossover plans take the scalar path and skip the cache.
            assert cache.hits == 0 and cache.misses == 0

    @given(items=work_items)
    @settings(max_examples=30, deadline=None)
    def test_duplicate_items_price_identically_within_one_plan(
        self, tiny_profile, items
    ):
        """Repeating a plan's items in-place must repeat their prices."""
        work = to_work(items) * 2
        priced = price_work(tiny_profile, work, 0.001, cache=PricingCache())
        half = len(work) // 2
        np.testing.assert_array_equal(priced[:half], priced[half:])


class TestCacheIsolation:
    """A shared cache must key on profile identity, never leak across tables."""

    @pytest.fixture(scope="class")
    def other_profile(self, tiny_model):
        """Same model on a bigger cluster: same keys, different prices."""
        return XProfiler(
            tiny_model,
            a40_cluster(8),
            max_batch=64,
            max_seq_len=256,
            batch_points=6,
            length_points=6,
        ).profile()

    def test_pricing_tokens_are_distinct(self, tiny_profile, other_profile):
        assert tiny_profile.pricing_token != other_profile.pricing_token

    @given(items=work_items, overhead=st.sampled_from([0.0, 0.0015]))
    @settings(max_examples=40, deadline=None)
    def test_shared_cache_never_crosses_profiles(
        self, tiny_profile, other_profile, items, overhead
    ):
        """Warm the cache on one table, price through the other: no bleed."""
        work = to_work(items)
        shared = PricingCache()
        via_a = price_work(tiny_profile, work, overhead, cache=shared)
        via_b = price_work(other_profile, work, overhead, cache=shared)
        np.testing.assert_array_equal(
            via_a, price_work(tiny_profile, work, overhead, batched=False)
        )
        np.testing.assert_array_equal(
            via_b, price_work(other_profile, work, overhead, batched=False)
        )
        # Replays through the shared cache stay pinned to their own table.
        np.testing.assert_array_equal(
            via_a, price_work(tiny_profile, work, overhead, cache=shared)
        )
        np.testing.assert_array_equal(
            via_b, price_work(other_profile, work, overhead, cache=shared)
        )

    def test_overhead_is_part_of_the_key(self, tiny_profile):
        """Different engine overheads must never share cache entries."""
        work = [StageWork(DECODE, 8, 4, False, 16.0, 128.0)] * 16
        shared = PricingCache()
        plain = price_work(tiny_profile, work, 0.0, cache=shared)
        taxed = price_work(tiny_profile, work, 0.002, cache=shared)
        np.testing.assert_array_equal(
            plain, price_work(tiny_profile, work, 0.0, batched=False)
        )
        np.testing.assert_array_equal(
            taxed, price_work(tiny_profile, work, 0.002, batched=False)
        )


class TestCacheMechanics:
    """Bounded size, honest counters, sane guard rails."""

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PricingCache(max_entries=0)

    def test_eviction_keeps_cache_bounded(self, tiny_profile):
        cache = PricingCache(max_entries=4)
        work = [
            StageWork(DECODE, 8, 4, False, float(b), 128.0) for b in range(1, 33)
        ]
        priced = price_work(tiny_profile, work, 0.0, cache=cache)
        assert len(cache.entries) <= 4
        # Eviction is a capacity policy only -- results stay bit-identical.
        np.testing.assert_array_equal(
            priced, price_work(tiny_profile, work, 0.0, batched=False)
        )

    def test_stats_counters_are_consistent(self, tiny_profile):
        cache = PricingCache()
        work = [
            StageWork(ENCODE, 8, 4, False, float(b), 64.0) for b in range(1, 21)
        ]
        price_work(tiny_profile, work, 0.0, cache=cache)
        price_work(tiny_profile, work, 0.0, cache=cache)
        stats = cache.stats()
        assert stats["misses"] == 20
        assert stats["hits"] == 20
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["size"] == 20
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0
        assert cache.stats()["size"] == 0

    def test_oversized_plan_guard_constant_is_sane(self):
        # The engine bypasses the cache for pathologically wide plans; the
        # guard must stay far above any real cycle's item count.
        assert _PRICING_CACHE_MAX_PLAN_ITEMS >= 1024

"""Tests for the pipelined-execution timeline, including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.timeline import Timeline


class TestBasicScheduling:
    def test_single_task(self):
        tl = Timeline()
        t = tl.add_task("s0", 2.0)
        assert tl.finish_time(t) == pytest.approx(2.0)
        assert tl.makespan_s == pytest.approx(2.0)

    def test_stage_serializes_tasks(self):
        tl = Timeline()
        a = tl.add_task("s0", 1.0)
        b = tl.add_task("s0", 2.0)
        assert tl.start_time(b) == pytest.approx(tl.finish_time(a))

    def test_independent_stages_overlap(self):
        tl = Timeline()
        tl.add_task("s0", 3.0)
        tl.add_task("s1", 3.0)
        assert tl.makespan_s == pytest.approx(3.0)

    def test_dependency_delays_start(self):
        tl = Timeline()
        a = tl.add_task("s0", 2.0)
        b = tl.add_task("s1", 1.0, deps=(a,))
        assert tl.start_time(b) == pytest.approx(2.0)

    def test_forward_dependency_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add_task("s0", 1.0, deps=(5,))

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add_task("s0", -1.0)

    def test_cannot_add_after_run(self):
        tl = Timeline()
        tl.add_task("s0", 1.0)
        tl.run()
        with pytest.raises(RuntimeError):
            tl.add_task("s0", 1.0)

    def test_empty_timeline(self):
        assert Timeline().makespan_s == 0.0


class TestPipelineBehaviour:
    def test_two_stage_pipeline_with_two_micro_batches(self):
        """Classic pipeline: fill + steady state = sum + (m-1)*bottleneck."""
        tl = Timeline()
        last = {}
        for mb in range(2):
            prev = None
            for stage in range(2):
                deps = (prev,) if prev is not None else ()
                prev = tl.add_task(f"s{stage}", 1.0, deps)
            last[mb] = prev
        assert tl.makespan_s == pytest.approx(3.0)

    def test_autoregressive_dependency_creates_bubble(self):
        """One batch on a 3-stage pipeline: iteration k+1 waits for k."""
        tl = Timeline()
        prev_iter_last = None
        for _ in range(2):
            prev = prev_iter_last
            for stage in range(3):
                deps = (prev,) if prev is not None else ()
                prev = tl.add_task(f"s{stage}", 1.0, deps)
            prev_iter_last = prev
        assert tl.makespan_s == pytest.approx(6.0)

    def test_utilization_sums_busy_time(self):
        tl = Timeline()
        tl.add_task("s0", 1.0)
        tl.add_task("s1", 4.0)
        util = tl.stage_utilization()
        assert util["s1"] == pytest.approx(1.0)
        assert util["s0"] == pytest.approx(0.25)
        busy = tl.stage_busy_time()
        assert busy["s0"] == pytest.approx(1.0)


class TestReleaseTimes:
    def test_earliest_start_delays_task(self):
        tl = Timeline()
        t = tl.add_task("s0", 1.0, earliest_start_s=5.0)
        assert tl.start_time(t) == pytest.approx(5.0)
        assert tl.finish_time(t) == pytest.approx(6.0)

    def test_earliest_start_noop_when_stage_busy(self):
        tl = Timeline()
        tl.add_task("s0", 10.0)
        t = tl.add_task("s0", 1.0, earliest_start_s=5.0)
        assert tl.start_time(t) == pytest.approx(10.0)

    def test_earliest_start_combines_with_deps(self):
        tl = Timeline()
        a = tl.add_task("s0", 2.0)
        b = tl.add_task("s1", 1.0, deps=(a,), earliest_start_s=7.0)
        assert tl.start_time(b) == pytest.approx(7.0)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add_task("s0", 1.0, earliest_start_s=-0.1)


class TestIncrementalScheduling:
    def test_queries_do_not_finalize(self):
        """An online driver can query times and keep adding tasks."""
        tl = Timeline()
        a = tl.add_task("s0", 2.0)
        assert tl.finish_time(a) == pytest.approx(2.0)
        b = tl.add_task("s0", 1.0)  # still allowed after the query
        assert tl.finish_time(b) == pytest.approx(3.0)

    def test_incremental_matches_batch(self):
        """Interleaving schedule_pending with adds changes nothing."""
        batch = Timeline()
        online = Timeline()
        plan = [("s0", 1.0, ()), ("s1", 2.0, (0,)), ("s0", 3.0, (1,)), ("s1", 1.5, ())]
        for stage, duration, deps in plan:
            batch.add_task(stage, duration, deps)
        for stage, duration, deps in plan:
            online.add_task(stage, duration, deps)
            online.schedule_pending()
        batch.run()
        for expected, actual in zip(batch.tasks, online.tasks):
            assert actual.start_s == pytest.approx(expected.start_s)
            assert actual.finish_s == pytest.approx(expected.finish_s)

    def test_stage_free_at(self):
        tl = Timeline()
        tl.add_task("s0", 2.0)
        tl.add_task("s0", 3.0)
        assert tl.stage_free_at("s0") == pytest.approx(5.0)
        assert tl.stage_free_at("unused", default=1.25) == 1.25

    def test_run_still_finalizes(self):
        tl = Timeline()
        tl.add_task("s0", 1.0)
        tl.run()
        with pytest.raises(RuntimeError):
            tl.add_task("s0", 1.0)


class TestTimelineProperties:
    @given(
        durations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # stage
                st.floats(min_value=0.0, max_value=5.0),  # duration
                st.integers(min_value=0, max_value=4),  # dep offset
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_no_stage_overlap_and_deps_respected(self, durations):
        tl = Timeline()
        ids = []
        for stage, duration, dep_offset in durations:
            deps = ()
            if ids and dep_offset > 0:
                deps = (ids[max(len(ids) - dep_offset, 0)],)
            ids.append(tl.add_task(f"s{stage}", duration, deps))
        tl.run()
        tasks = tl.tasks
        # Dependencies respected.
        for task in tasks:
            for dep in task.deps:
                assert task.start_s >= tasks[dep].finish_s - 1e-9
        # No two tasks on the same stage overlap.
        by_stage: dict[object, list] = {}
        for task in tasks:
            by_stage.setdefault(task.stage, []).append(task)
        for stage_tasks in by_stage.values():
            ordered = sorted(stage_tasks, key=lambda t: t.start_s)
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.start_s >= earlier.finish_s - 1e-9
        # Makespan is the max finish time.
        assert tl.makespan_s == pytest.approx(max(t.finish_s for t in tasks))

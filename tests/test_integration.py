"""End-to-end integration tests on the paper's OPT-13B deployment.

These exercise the full pipeline -- profile, schedule, run, compare against
FasterTransformer -- at a reduced trace size and assert the qualitative
claims of the paper hold on this substrate.
"""

import pytest

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.serving.evaluation import default_baselines, measure_baseline, measure_exegpt
from repro.serving.latency_bounds import derive_latency_bounds
from repro.workloads.synthetic import generate_task_trace
from repro.workloads.tasks import get_task


@pytest.fixture(scope="module")
def trace():
    return generate_task_trace(get_task("S"), num_requests=400, seed=3)


@pytest.fixture(scope="module")
def bounds(opt13b_engine):
    (ft,) = default_baselines(opt13b_engine, ("ft",))
    return derive_latency_bounds(ft, target_length=get_task("S").output_p99)


@pytest.mark.slow
class TestEndToEnd:
    def test_scheduler_finds_schedules_for_all_bounds(self, opt13b_engine, bounds):
        for constraint in bounds.as_list():
            result = opt13b_engine.schedule(constraint, policies=(SchedulePolicy.RRA,))
            assert result.found, f"no schedule for bound {constraint.bound_s}"
            assert result.best.latency_s <= constraint.bound_s * 1.001

    def test_exegpt_outperforms_ft_under_latency_constraints(self, opt13b_engine, bounds, trace):
        """The headline claim: under latency bounds ExeGPT out-throughputs FT
        (by 2.9x on average in the paper).  On this substrate the gain is
        largest at tight bounds; at the unbounded constraint FT's single huge
        static batch is more competitive than on the paper's hardware, so we
        assert a clear win at the tight bound and overall parity or better on
        average."""
        (ft,) = default_baselines(opt13b_engine, ("ft",))
        speedups = {}
        for constraint in (bounds.tight, bounds.unbounded):
            exe = measure_exegpt(opt13b_engine, trace, constraint)
            ft_row = measure_baseline(ft, trace, constraint)
            speedups[constraint.label] = (
                exe.throughput_seq_per_s / ft_row.throughput_seq_per_s
            )
        assert speedups["10%"] > 1.3
        assert speedups["Inf"] > 0.7
        assert sum(speedups.values()) / len(speedups) > 1.1

    def test_measured_latency_tracks_bound(self, opt13b_engine, bounds, trace):
        constraint = bounds.medium
        exe = measure_exegpt(opt13b_engine, trace, constraint)
        assert exe.satisfied

    def test_estimate_close_to_measurement(self, opt13b_engine, trace):
        search = opt13b_engine.schedule(
            LatencyConstraint(bound_s=6.0, target_length=63),
            policies=(SchedulePolicy.RRA,),
        )
        assert search.found
        result = opt13b_engine.run(trace, search.best.config)
        measured = result.steady_state_throughput()
        estimated = search.best.throughput_seq_per_s
        assert 0.4 < estimated / measured < 2.5

    def test_throughput_grows_as_bound_relaxes(self, opt13b_engine, bounds, trace):
        throughputs = []
        for constraint in bounds.as_list():
            exe = measure_exegpt(opt13b_engine, trace, constraint, policies=(SchedulePolicy.RRA,))
            throughputs.append(exe.throughput_seq_per_s)
        assert throughputs[-1] >= throughputs[0]

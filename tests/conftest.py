"""Shared fixtures for the test suite.

Most tests run against deliberately tiny models and short profiling sweeps so
the whole suite stays fast; a handful of session-scoped fixtures provide the
paper-scale OPT-13B setup for integration tests.
"""

from __future__ import annotations

import pytest

from repro.core.distributions import SequenceDistribution
from repro.core.exegpt import ExeGPT
from repro.core.profiler import ProfileTable, XProfiler
from repro.core.simulator import XSimulator
from repro.hardware.cluster import Cluster, a40_cluster
from repro.models.spec import Architecture, ModelSpec


@pytest.fixture(scope="session")
def tiny_model() -> ModelSpec:
    """A small decoder-only model for fast tests."""
    return ModelSpec(
        name="Tiny-GPT",
        architecture=Architecture.DECODER_ONLY,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        vocab_size=8192,
    )


@pytest.fixture(scope="session")
def tiny_encdec_model() -> ModelSpec:
    """A small encoder-decoder model for fast tests."""
    return ModelSpec(
        name="Tiny-T5",
        architecture=Architecture.ENCODER_DECODER,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        vocab_size=8192,
    )


@pytest.fixture(scope="session")
def tiny_cluster() -> Cluster:
    """A four-GPU A40 sub-cluster."""
    return a40_cluster(4)


@pytest.fixture(scope="session")
def tiny_profile(tiny_model, tiny_cluster) -> ProfileTable:
    """Profile of the tiny decoder-only model on four GPUs."""
    return XProfiler(
        tiny_model,
        tiny_cluster,
        max_batch=128,
        max_seq_len=512,
        batch_points=10,
        length_points=10,
    ).profile()


@pytest.fixture(scope="session")
def tiny_encdec_profile(tiny_encdec_model, tiny_cluster) -> ProfileTable:
    """Profile of the tiny encoder-decoder model on four GPUs."""
    return XProfiler(
        tiny_encdec_model,
        tiny_cluster,
        max_batch=128,
        max_seq_len=512,
        batch_points=10,
        length_points=10,
    ).profile()


@pytest.fixture(scope="session")
def short_input_dist() -> SequenceDistribution:
    """Input-length distribution used by the tiny scenarios."""
    return SequenceDistribution.truncated_normal(mean=48, std=16, max_len=96, name="in")


@pytest.fixture(scope="session")
def short_output_dist() -> SequenceDistribution:
    """Output-length distribution used by the tiny scenarios."""
    return SequenceDistribution.truncated_normal(mean=16, std=6, max_len=40, name="out")


@pytest.fixture(scope="session")
def tiny_simulator(tiny_profile, short_input_dist, short_output_dist) -> XSimulator:
    """XSimulator over the tiny decoder-only model."""
    return XSimulator(tiny_profile, short_input_dist, short_output_dist)


@pytest.fixture(scope="session")
def tiny_encdec_simulator(
    tiny_encdec_profile, short_input_dist, short_output_dist
) -> XSimulator:
    """XSimulator over the tiny encoder-decoder model."""
    return XSimulator(tiny_encdec_profile, short_input_dist, short_output_dist)


@pytest.fixture(scope="session")
def tiny_engine(
    tiny_model, tiny_cluster, short_input_dist, short_output_dist
) -> ExeGPT:
    """An ExeGPT facade over the tiny model (profiles lazily, cached)."""
    return ExeGPT(
        model=tiny_model,
        cluster=tiny_cluster,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
        max_encode_batch=32,
    )


@pytest.fixture(scope="session")
def opt13b_engine() -> ExeGPT:
    """The paper's OPT-13B / 4xA40 deployment (session-scoped: profiled once)."""
    return ExeGPT.for_task("OPT-13B", "S", max_encode_batch=48)

"""Tests for per-layer FLOP/byte calculators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.catalog import GPT3_175B, OPT_13B, T5_11B
from repro.models.flops import decoder_layer_work, encoder_layer_work, sequence_flops


class TestEncoderLayerWork:
    def test_flops_scale_with_tokens(self):
        small = encoder_layer_work(OPT_13B, batch=1, input_len=128)
        large = encoder_layer_work(OPT_13B, batch=4, input_len=128)
        assert large.flops == pytest.approx(4 * small.flops, rel=0.05)

    def test_attention_quadratic_in_length(self):
        short = encoder_layer_work(OPT_13B, 1, 128).flops
        long = encoder_layer_work(OPT_13B, 1, 256).flops
        # Dense part doubles, attention part quadruples: ratio in (2, 4).
        assert 2.0 < long / short < 4.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            encoder_layer_work(OPT_13B, -1, 10)


class TestDecoderLayerWork:
    def test_decode_step_much_cheaper_than_prefill(self):
        prefill = encoder_layer_work(OPT_13B, 8, 256).flops
        step = decoder_layer_work(OPT_13B, 8, 256).flops
        assert prefill > 50 * step

    def test_weight_bytes_independent_of_batch(self):
        a = decoder_layer_work(OPT_13B, 1, 128).weight_bytes
        b = decoder_layer_work(OPT_13B, 64, 128).weight_bytes
        assert a == b

    def test_cross_attention_models_have_heavier_layers(self):
        t5 = decoder_layer_work(T5_11B, 4, 64, input_len=128)
        assert t5.weight_bytes == T5_11B.layer_bytes(with_cross_attention=True)

    @given(
        batch=st.integers(min_value=1, max_value=64),
        context=st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=25, deadline=None)
    def test_work_monotone_in_context(self, batch, context):
        small = decoder_layer_work(OPT_13B, batch, context).flops
        large = decoder_layer_work(OPT_13B, batch, context + 64).flops
        assert large >= small


class TestSequenceFlops:
    def test_generating_one_token_costs_tens_of_gigaflops(self):
        """The introduction's claim: hundreds of billions of FLOPs per token
        for very large models; OPT-13B is ~26 GFLOPs/token (2x params)."""
        flops = sequence_flops(OPT_13B, input_len=1, output_len=1)
        assert flops > 2 * OPT_13B.total_parameters * 0.8

    def test_gpt3_175b_token_cost(self):
        flops = sequence_flops(GPT3_175B, input_len=1, output_len=1)
        assert flops > 3e11  # hundreds of billions of FLOPs

    def test_flops_increase_with_output_length(self):
        assert sequence_flops(OPT_13B, 64, 16) > sequence_flops(OPT_13B, 64, 8)

    def test_invalid_output_rejected(self):
        with pytest.raises(ValueError):
            sequence_flops(OPT_13B, 64, -1)

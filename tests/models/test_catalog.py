"""Tests for the model catalog (Table 1) and deployments (Table 2)."""

import pytest

from repro.models.catalog import (
    DEPLOYMENTS,
    GPT3_39B,
    GPT3_101B,
    GPT3_175B,
    GPT3_341B,
    OPT_13B,
    T5_11B,
    deployment_for,
    get_model,
    known_models,
)


class TestTable1:
    @pytest.mark.parametrize(
        "model,layers,hidden,heads",
        [
            (T5_11B, 48, 1024, 128),
            (OPT_13B, 40, 5120, 40),
            (GPT3_39B, 48, 8192, 64),
            (GPT3_101B, 80, 10240, 80),
            (GPT3_175B, 96, 12288, 96),
            (GPT3_341B, 120, 15360, 120),
        ],
    )
    def test_architectural_parameters(self, model, layers, hidden, heads):
        assert model.num_layers == layers
        assert model.hidden_size == hidden
        assert model.num_heads == heads

    @pytest.mark.parametrize(
        "model,params_b,tolerance",
        [
            (OPT_13B, 13, 0.15),
            (GPT3_39B, 39, 0.15),
            (GPT3_101B, 101, 0.15),
            (GPT3_175B, 175, 0.15),
            (GPT3_341B, 341, 0.15),
        ],
    )
    def test_parameter_counts_near_nominal(self, model, params_b, tolerance):
        actual = model.total_parameters / 1e9
        assert abs(actual - params_b) / params_b < tolerance

    def test_t5_is_encoder_decoder_others_not(self):
        assert T5_11B.is_encoder_decoder
        assert not OPT_13B.is_encoder_decoder
        assert not GPT3_175B.is_encoder_decoder


class TestLookup:
    def test_get_model_aliases(self):
        assert get_model("OPT-13B") is OPT_13B
        assert get_model("opt 13b") is OPT_13B
        assert get_model("GPT-3 175B") is GPT3_175B

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("LLaMA-65B")

    def test_known_models_count(self):
        assert len(known_models()) == 6


class TestTable2Deployments:
    def test_all_models_have_a_deployment(self):
        assert set(DEPLOYMENTS) == set(known_models())

    @pytest.mark.parametrize(
        "model,cluster,gpus",
        [
            ("T5-11B", "A40", 8),
            ("OPT-13B", "A40", 4),
            ("GPT3-39B", "A40", 16),
            ("GPT3-101B", "A100", 16),
            ("GPT3-175B", "A100", 16),
            ("GPT3-341B", "A40", 48),
        ],
    )
    def test_deployments_match_table2(self, model, cluster, gpus):
        assert deployment_for(model) == (cluster, gpus)

    def test_unknown_deployment_raises(self):
        with pytest.raises(KeyError):
            deployment_for("GPT-4")

    def test_accepts_model_spec(self):
        # Regression: deployment_for(ModelSpec) used to crash with
        # AttributeError ('ModelSpec' object has no attribute 'upper').
        assert deployment_for(GPT3_39B) == deployment_for("GPT3-39B")
        assert deployment_for(T5_11B) == ("A40", 8)

    def test_get_model_accepts_model_spec(self):
        assert get_model(OPT_13B) is OPT_13B
        assert get_model(GPT3_175B) is GPT3_175B

"""Tests for transformer model specifications."""

import pytest

from repro.models.spec import Architecture, ModelSpec


class TestModelSpec:
    def test_default_ffn_is_4x_hidden(self, tiny_model):
        assert tiny_model.ffn_size == 4 * tiny_model.hidden_size

    def test_head_dim(self, tiny_model):
        assert tiny_model.head_dim == tiny_model.hidden_size // tiny_model.num_heads

    def test_decoder_only_layer_split(self, tiny_model):
        assert tiny_model.num_encoder_layers == tiny_model.num_layers
        assert tiny_model.num_decoder_layers == tiny_model.num_layers
        assert not tiny_model.decoder_has_cross_attention

    def test_encoder_decoder_layer_split(self, tiny_encdec_model):
        assert tiny_encdec_model.num_encoder_layers == tiny_encdec_model.num_layers // 2
        assert (
            tiny_encdec_model.num_encoder_layers + tiny_encdec_model.num_decoder_layers
            == tiny_encdec_model.num_layers
        )
        assert tiny_encdec_model.decoder_has_cross_attention

    def test_cross_attention_increases_layer_params(self, tiny_model):
        assert tiny_model.layer_parameters(True) > tiny_model.layer_parameters(False)

    def test_total_parameters_positive_and_consistent(self, tiny_model, tiny_encdec_model):
        for model in (tiny_model, tiny_encdec_model):
            assert model.total_parameters > 0
            assert model.total_bytes == model.total_parameters * model.dtype_bytes

    def test_kv_bytes_per_token(self, tiny_model):
        per_layer = tiny_model.kv_bytes_per_token_per_layer()
        assert per_layer == 2 * tiny_model.hidden_size * tiny_model.dtype_bytes
        assert tiny_model.kv_bytes_per_token() == per_layer * tiny_model.num_decoder_layers
        assert tiny_model.kv_bytes_per_token(num_layers=2) == 2 * per_layer

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", Architecture.DECODER_ONLY, 0, 512, 8)
        with pytest.raises(ValueError):
            ModelSpec("bad", Architecture.DECODER_ONLY, 4, 510, 8)  # not divisible
        with pytest.raises(ValueError):
            ModelSpec("bad", Architecture.DECODER_ONLY, 4, 512, 8, dtype_bytes=3)

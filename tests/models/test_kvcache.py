"""Tests for KV-cache sizing."""

import pytest

from repro.models.catalog import OPT_13B, T5_11B
from repro.models.kvcache import (
    kv_cache_bytes_for_batch,
    kv_cache_bytes_per_request,
    max_batch_for_memory,
)


class TestKVCacheSizing:
    def test_per_request_scales_with_lengths(self):
        short = kv_cache_bytes_per_request(OPT_13B, 128, 32)
        long = kv_cache_bytes_per_request(OPT_13B, 256, 64)
        assert long == pytest.approx(2 * short)

    def test_per_request_scales_with_layers(self):
        full = kv_cache_bytes_per_request(OPT_13B, 128, 32)
        half = kv_cache_bytes_per_request(OPT_13B, 128, 32, num_layers=20)
        assert half == pytest.approx(full / 2)

    def test_batch_cache_is_linear_in_batch(self):
        one = kv_cache_bytes_for_batch(OPT_13B, 1, 128, 32)
        many = kv_cache_bytes_for_batch(OPT_13B, 64, 128, 32)
        assert many == pytest.approx(64 * one)

    def test_encoder_decoder_counts_cross_attention_memory(self):
        t5 = kv_cache_bytes_per_request(T5_11B, input_len=128, output_len=0)
        assert t5 > 0  # the encoded input is cached for cross-attention

    def test_max_batch_inverse_of_per_request(self):
        per_request = kv_cache_bytes_per_request(OPT_13B, 128, 64)
        batch = max_batch_for_memory(OPT_13B, per_request * 10.5, 128, 64)
        assert batch == 10

    def test_max_batch_with_zero_memory(self):
        assert max_batch_for_memory(OPT_13B, 0, 128, 64) == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            kv_cache_bytes_per_request(OPT_13B, -1, 1)
        with pytest.raises(ValueError):
            kv_cache_bytes_for_batch(OPT_13B, -1, 1, 1)
        with pytest.raises(ValueError):
            max_batch_for_memory(OPT_13B, -1, 1, 1)

    def test_opt13b_magnitude(self):
        """One 600-token OPT-13B request occupies roughly 0.5 GiB of cache."""
        size_gib = kv_cache_bytes_per_request(OPT_13B, 512, 80) / 1024 ** 3
        assert 0.2 < size_gib < 1.5

"""Tests for the experiment (figure/table) reproduction modules.

These use heavily scaled-down configurations so they run quickly; the full
configurations are exercised by the benchmark suite.
"""

import pytest

import repro.experiments as ex


class TestConfigTables:
    def test_table1_rows(self):
        rows = ex.run_table1()
        assert len(rows) == 6
        opt = next(r for r in rows if "OPT" in r["model"])
        assert opt["layers"] == 40 and opt["hidden"] == 5120

    def test_table2_contains_both_clusters_and_all_deployments(self):
        rows = ex.run_table2()
        clusters = {r["cluster"] for r in rows}
        assert clusters == {"A40", "A100"}
        deploy_rows = [r for r in rows if str(r["gpu"]).startswith("deploy:")]
        assert len(deploy_rows) == 6

    def test_table3_has_five_tasks(self):
        rows = ex.run_table3()
        assert len(rows) == 5
        assert {r["id"] for r in rows} == {"S", "T", "G", "C1", "C2"}


class TestTable4:
    def test_trend_matches_paper(self):
        rows = ex.run_table4()
        dram = [r["dram_s"] for r in rows]
        ssd = [r["ssd_s"] for r in rows]
        assert all(s > d for s, d in zip(ssd, dram))
        assert dram == sorted(dram)
        assert ssd == sorted(ssd)

    def test_magnitudes_within_factor_three_of_paper(self):
        rows = {r["model"].replace("GPT-3 ", "GPT3-"): r for r in ex.run_table4()}
        for model, published in ex.PAPER_TABLE4.items():
            ours = rows[model]
            assert ours["ssd_s"] / published["ssd_s"] < 3.0
            assert published["ssd_s"] / ours["ssd_s"] < 3.0


class TestFormatting:
    def test_format_table_renders_all_rows(self):
        text = ex.format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], ["a", "b"], title="T"
        )
        assert "T" in text and "10" in text and "0.25" in text


@pytest.mark.slow
class TestMeasuredExperiments:
    """Scaled-down versions of the measured experiments (marked slow)."""

    def test_figure7_subset_ft_strongest(self):
        rows = ex.run_figure7(tasks=("S",), num_requests=160, bounds_subset=(1, 3))
        assert rows
        assert ex.ft_wins(rows)

    def test_figure6_subset_exegpt_beats_ft(self):
        rows = ex.run_figure6(
            models=("OPT-13B",), tasks=("S",), num_requests=320, bounds_subset=(0, 3)
        )
        speedups = ex.figure6_speedups(rows)
        assert speedups
        assert max(speedups.values()) > 1.0

    def test_figure9_subset_reports_both_systems(self):
        rows = ex.run_figure9(models=("OPT-13B",), tasks=("T",))
        systems = {r.system for r in rows}
        assert "ft" in systems
        assert any(s.startswith("waa") for s in systems)

    def test_table5_mostly_monotonic(self):
        rows = ex.run_table5(tasks=("S",), tolerances_pct=(5.0,))
        assert ex.overall_monotonic_fraction(rows, 5.0) > 0.8

    def test_table6_throughput_increases_with_relaxed_bounds(self):
        rows = ex.run_table6()
        feasible = [r for r in rows if r.throughput_seq_per_s > 0]
        assert len(feasible) >= 3
        tputs = [r.throughput_seq_per_s for r in feasible]
        assert tputs == sorted(tputs)
        assert ex.tightest_to_max_throughput_ratio(rows) > 0.3

    def test_scheduling_cost_branch_and_bound_cheaper(self):
        rows = ex.run_scheduling_cost(max_encode_batch=16, methods=("branch_and_bound", "exhaustive"))
        assert ex.search_efficiency(rows) > 2.0

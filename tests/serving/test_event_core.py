"""Tests for the batched discrete-event serving core (`ServingLoop`).

The contract under test: the ``"event"`` core reproduces the historical
``"stepped"`` core **bit for bit** -- same per-request records, same replica
assignments, same (request id, clock) iterate interleaving -- for every
driver, every routing policy, single server and fleet, including rejection
accounting at exact-tie timestamps.  On top of the parity gate: the pinned
exact-tie semantics (an arrival landing at precisely a replica-ready clock
is routed before the replica iterates), the workload-scaled
``max_iterations`` default that replaces the fixed 500k cap, and the
diagnostic payload of the convergence error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.engine.pool import EMPTY_IDS, RequestPool
from repro.serving.fleet import Fleet
from repro.serving.online import (
    DEFAULT_CORE,
    SERVING_CORES,
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineRequestRecord,
    OnlineServer,
    RecordColumns,
    RecordSequence,
    ServingLoop,
    default_max_iterations,
)
from repro.workloads.arrivals import PoissonProcess, attach_arrivals
from repro.workloads.synthetic import generate_trace_from_distributions


def _server(kind, profile, in_dist, out_dist, simulator, **kwargs):
    """One of the four online drivers, by name (the fleet-test idiom)."""
    if kind in ("orca", "vllm"):
        cls = Orca if kind == "orca" else Vllm
        system = cls(
            profile=profile,
            input_distribution=in_dist,
            output_distribution=out_dist,
        )
        return ContinuousBatchingOnlineServer(
            system=system, batch_size=kwargs.get("batch_size", 8),
            max_queue=kwargs.get("max_queue", 512),
        )
    if kind == "rra":
        config = ScheduleConfig(
            policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
        )
    else:  # waa
        config = ScheduleConfig(
            policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
        )
    return ExeGPTOnlineServer(
        simulator, config, max_queue=kwargs.get("max_queue", 512)
    )


# ---------------------------------------------------------------------------
# A deterministic stub replica: serves one queued id per iterate
# ---------------------------------------------------------------------------


class StubReplica(OnlineServer):
    """Fixed-service-time replica exposing the full steppable API.

    Each ``iterate`` pops one queued id and completes it ``service_s``
    later; the (rid, clock) interleaving is logged so tests can assert the
    two cores made identical decisions in identical order.
    """

    def __init__(self, service_s: float, max_queue: int = 512, name="stub"):
        super().__init__(name=name, max_queue=max_queue)
        self.service_s = service_s
        self.log: list[tuple[int, float]] = []

    def clone(self, name=None):
        return StubReplica(self.service_s, self.max_queue, name or self.name)

    def service_rate(self) -> float:
        return 1.0 / self.service_s

    def _reset(self, timeline, pool) -> None:
        self._active = EMPTY_IDS
        self.log = []

    def _busy(self) -> bool:
        return False

    def _iterate(self, clock: float) -> float:
        rid = self._queue.popleft()
        self.log.append((rid, clock))
        return clock + self.service_s

    def resolve_records(self, records: RecordColumns) -> None:
        for rid, start in self.log:
            records.admitted_s[rid] = start
            records.first_token_s[rid] = start
            records.finish_s[rid] = start + self.service_s


def _stub_pool(arrivals) -> RequestPool:
    arrivals = np.asarray(arrivals, dtype=float)
    ones = np.ones(arrivals.size, dtype=np.int64)
    return RequestPool.from_arrays(ones * 4, ones * 2, arrivals)


def _serve_stub_fleet(arrivals, services, max_queue, routing, core):
    """One fresh stub fleet served over ``arrivals``; returns the evidence
    the parity assertions compare."""
    replicas = [
        StubReplica(s, max_queue=max_queue, name=f"stub#{i}")
        for i, s in enumerate(services)
    ]
    fleet = Fleet(replicas, routing=routing, name="stub-fleet")
    result = fleet.serve_pool(_stub_pool(arrivals), core=core)
    return result, [r.log for r in replicas]


# ---------------------------------------------------------------------------
# Stepped vs event parity: randomized stub fleets
# ---------------------------------------------------------------------------


class TestStubParity:
    @given(
        arrivals=st.lists(
            st.sampled_from([0.0, 0.0, 0.1, 0.25, 0.25, 0.5, 0.75, 1.0, 2.0]),
            min_size=1,
            max_size=40,
        ),
        services=st.lists(
            st.sampled_from([0.05, 0.1, 0.25, 0.5]), min_size=1, max_size=4
        ),
        max_queue=st.integers(1, 4),
        routing=st.sampled_from(
            ["round-robin", "jsq", "least-outstanding-work"]
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_event_core_matches_stepped_core(
        self, arrivals, services, max_queue, routing
    ):
        """Records, assignments and iterate interleavings are identical --
        arrival ties, queue-bound rejections and all."""
        stepped, stepped_logs = _serve_stub_fleet(
            arrivals, services, max_queue, routing, core="stepped"
        )
        event, event_logs = _serve_stub_fleet(
            arrivals, services, max_queue, routing, core="event"
        )
        assert event.fleet.records == stepped.fleet.records
        np.testing.assert_array_equal(event.assignments, stepped.assignments)
        assert event_logs == stepped_logs
        for ev, st_ in zip(event.replicas, stepped.replicas):
            assert ev.records == st_.records

    def test_single_server_cores_agree(self):
        arrivals = [0.0, 0.0, 0.3, 0.3, 0.6, 2.0, 2.0, 2.0]
        results = {}
        for core in SERVING_CORES:
            server = StubReplica(0.2, max_queue=2)
            results[core] = server.serve_pool(_stub_pool(arrivals), core=core)
        assert results["event"].records == results["stepped"].records
        assert results["event"].rejected == results["stepped"].rejected

    def test_unknown_core_rejected(self):
        server = StubReplica(0.1)
        with pytest.raises(ValueError, match="unknown serving core"):
            server.serve_pool(_stub_pool([0.0]), core="warp")
        assert DEFAULT_CORE in SERVING_CORES


# ---------------------------------------------------------------------------
# Pinned exact-tie semantics
# ---------------------------------------------------------------------------


class TestExactTieSemantics:
    """An arrival at *precisely* a replica-ready clock is routed before the
    replica iterates -- in both cores, bit-equal timestamps included."""

    @pytest.mark.parametrize("core", SERVING_CORES)
    def test_tie_arrival_rejected_while_queue_still_full(self, core):
        # service 0.5, max_queue 1: rid0 starts at 0.0 and frees the queue
        # only by iterating at 0.5; rid1 occupies the queue from 0.25.  The
        # arrival at exactly 0.5 must be offered BEFORE the iterate drains
        # the queue, so it finds it full and is rejected.
        server = StubReplica(0.5, max_queue=1)
        result = server.serve_pool(_stub_pool([0.0, 0.25, 0.5]), core=core)
        assert [r.rejected for r in result.records] == [False, False, True]
        assert result.records[1].admitted_s == 0.5

    @pytest.mark.parametrize("core", SERVING_CORES)
    def test_tie_arrival_admitted_when_queue_has_space(self, core):
        # Same timestamps, queue bound 2: the tie arrival is queued at its
        # arrival instant and served after rid1.
        server = StubReplica(0.5, max_queue=2)
        result = server.serve_pool(_stub_pool([0.0, 0.25, 0.5]), core=core)
        assert [r.rejected for r in result.records] == [False, False, False]
        assert result.records[1].admitted_s == 0.5
        assert result.records[2].admitted_s == 1.0

    @pytest.mark.parametrize("core", SERVING_CORES)
    def test_tie_arrivals_in_fleet_route_before_iterates(self, core):
        # Two replicas, both ready at exactly 0.4 when three ids land at
        # 0.4: round-robin deals them deterministically, and the lower
        # replica index iterates first at the tied ready time.
        result, logs = _serve_stub_fleet(
            arrivals=[0.0, 0.0, 0.4, 0.4, 0.4],
            services=[0.4, 0.4],
            max_queue=8,
            routing="round-robin",
            core=core,
        )
        assert result.rejected == 0
        np.testing.assert_array_equal(
            result.assignments, [0, 1, 0, 1, 0]
        )
        assert logs[0] == [(0, 0.0), (2, 0.4), (4, 0.8)]
        assert logs[1] == [(1, 0.0), (3, 0.4)]


# ---------------------------------------------------------------------------
# Real drivers: stepped vs event across systems and routings
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parity_trace(short_input_dist, short_output_dist):
    trace = generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=48, seed=21,
        name="event-core",
    )
    return attach_arrivals(trace, PoissonProcess(25.0), seed=11)


class TestDriverParity:
    @pytest.mark.parametrize("kind", ["orca", "vllm", "rra", "waa"])
    def test_single_server_event_matches_stepped(
        self, kind, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, parity_trace,
    ):
        server = _server(
            kind, tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        stepped = server.serve(parity_trace, core="stepped")
        event = server.serve(parity_trace, core="event")
        assert event.records == stepped.records
        assert event.makespan_s == stepped.makespan_s
        assert event.extra == stepped.extra

    @pytest.mark.parametrize("kind", ["orca", "vllm", "rra", "waa"])
    @pytest.mark.parametrize(
        "routing", ["round-robin", "jsq", "least-outstanding-work"]
    )
    def test_fleet_event_matches_stepped(
        self, kind, routing, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, parity_trace,
    ):
        server = _server(
            kind, tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        fleet = Fleet.homogeneous(server, 3, routing=routing)
        stepped = fleet.serve(parity_trace, core="stepped")
        event = fleet.serve(parity_trace, core="event")
        assert event.fleet.records == stepped.fleet.records
        np.testing.assert_array_equal(event.assignments, stepped.assignments)
        for ev, st_ in zip(event.replicas, stepped.replicas):
            assert ev.records == st_.records
            assert ev.makespan_s == st_.makespan_s

    def test_fleet_rejection_parity_under_overload(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator,
    ):
        trace = generate_trace_from_distributions(
            short_input_dist, short_output_dist, num_requests=64, seed=9,
            name="overload",
        )
        online = attach_arrivals(trace, PoissonProcess(2000.0), seed=3)
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4, max_queue=4,
        )
        fleet = Fleet.homogeneous(server, 2, routing="jsq")
        stepped = fleet.serve(online, core="stepped")
        event = fleet.serve(online, core="event")
        assert stepped.rejected > 0
        assert event.fleet.records == stepped.fleet.records
        np.testing.assert_array_equal(event.assignments, stepped.assignments)


# ---------------------------------------------------------------------------
# max_iterations scaling and convergence diagnostics
# ---------------------------------------------------------------------------


class TestMaxIterations:
    def test_default_scales_with_pool(self):
        small = _stub_pool(np.zeros(10))
        assert default_max_iterations(small) == 500_000
        big = _stub_pool(np.zeros(100_000))
        # 8 per request + one per remaining output token + replica slack.
        expected = 8 * 100_000 + 2 * 100_000 + 64 * 4
        assert default_max_iterations(big, replicas=4) == max(500_000, expected)

    def test_explicit_override_still_wins(self):
        pool = _stub_pool([0.0, 0.0, 0.0])
        loop = ServingLoop(
            pool, [StubReplica(0.1)], route=lambda rid, clock: True,
            on_reject=lambda rid: None, max_iterations=7,
        )
        assert loop.max_iterations == 7

    @pytest.mark.slow
    def test_trace_larger_than_historical_cap_completes(self):
        """>500k arrivals used to trip the fixed `_MAX_ITERATIONS` even
        while the loop was draining honestly; the scaled default must not.
        """
        n = 500_001
        pool = _stub_pool(np.zeros(n))
        server = StubReplica(1e-6, max_queue=n)
        result = server.serve_pool(pool)
        assert result.completed == n
        assert result.rejected == 0
        # The old fixed cap would have raised before draining.
        assert float(result.extra["iterations"]) == n

    @pytest.mark.parametrize("core", SERVING_CORES)
    def test_convergence_error_carries_diagnostics(self, core):
        class StuckReplica(StubReplica):
            def _busy(self) -> bool:
                return True  # never drains

            def _iterate(self, clock: float) -> float:
                return clock  # no progress either

        pool = _stub_pool([0.0, 0.0, 5.0])
        replica = StuckReplica(0.1, name="stuck")
        replica.reset(None, pool)
        loop = ServingLoop(
            pool, [replica],
            route=lambda rid, clock: replica.enqueue(rid),
            on_reject=lambda rid: None,
            max_iterations=10, name="diagnose", core=core,
        )
        with pytest.raises(RuntimeError) as err:
            loop.run()
        message = str(err.value)
        assert "diagnose" in message
        assert "max_iterations=10" in message
        assert "clock=0.000000s" in message
        assert "ingested=2/3" in message
        assert "remaining=1" in message
        assert "iterations=[11]" in message
        assert "queue depths=" in message
        assert "in flight=" in message


# ---------------------------------------------------------------------------
# Pool-direct serving (`serve_pool` / `from_arrays`)
# ---------------------------------------------------------------------------


class TestServePool:
    def test_serve_pool_matches_serve_from_trace(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, parity_trace,
    ):
        """Building the pool from raw arrays is the trace path without the
        per-request spec boxing -- same records, bit for bit."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        from_trace = server.serve(parity_trace)
        pool = RequestPool.from_arrays(
            np.array([r.input_len for r in parity_trace.requests]),
            np.array([r.output_len for r in parity_trace.requests]),
            np.array([r.arrival_s for r in parity_trace.requests]),
            np.array([r.request_id for r in parity_trace.requests]),
        )
        from_arrays = server.serve_pool(pool)
        assert from_arrays.records == from_trace.records
        assert from_arrays.makespan_s == from_trace.makespan_s

    def test_result_columns_are_preseeded(self):
        """`from_columns` results never re-scan their records: aggregates
        come straight from the serve's columnar store."""
        server = StubReplica(0.1, max_queue=1)
        result = server.serve_pool(_stub_pool([0.0, 0.0, 0.0, 1.0]))
        assert "_columns" in result.__dict__
        assert result.offered == 4
        assert result.completed + result.rejected == 4
        np.testing.assert_array_equal(
            result.__dict__["_columns"]["rejected"],
            [r.rejected for r in result.records],
        )

    def test_empty_pool_rejected(self):
        server = StubReplica(0.1)
        with pytest.raises(ValueError, match="at least one request"):
            server.serve_pool(RequestPool())

    def test_same_pool_can_be_served_repeatedly(self):
        """Serving resets the pool's generation progress first.

        The latent bug this flushes out: a pool is consumed as it is
        served (``generated`` / ``done`` columns advance), so a second
        serve of the same pool used to see every request already done and
        silently complete **nothing** -- no error, a zero-request result.
        """
        pool = _stub_pool([0.0, 0.25, 0.5, 1.0])
        first = StubReplica(0.1, max_queue=8).serve_pool(pool)
        again = StubReplica(0.1, max_queue=8).serve_pool(pool)
        assert first.completed == 4
        assert again.completed == 4
        assert again.records == first.records
        assert again.makespan_s == first.makespan_s

    def test_same_pool_across_fleets_and_cores(self):
        """One pool serves through several fleets/cores in sequence."""
        arrivals = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        pool = _stub_pool(arrivals)
        results = []
        for core in SERVING_CORES:
            fleet = Fleet(
                replicas=[StubReplica(0.2, max_queue=4) for _ in range(2)],
                routing="round-robin",
                name="stub-fleet",
            )
            results.append(fleet.serve_pool(pool, core=core))
        assert all(r.fleet.completed == len(arrivals) for r in results)
        assert results[0].fleet.records == results[1].fleet.records


class TestRecordSequence:
    """The columnar record sequence must be indistinguishable from the
    boxed record tuple it replaces (length, indexing, slicing, iteration,
    equality) while boxing records only on access."""

    def _result(self):
        server = StubReplica(0.1, max_queue=2)
        return server.serve_pool(_stub_pool([0.0, 0.0, 0.1, 0.25, 4.0]))

    def test_is_columnar_not_boxed(self):
        result = self._result()
        assert isinstance(result.records, RecordSequence)
        assert len(result.records) == 5

    def test_indexing_slicing_and_gather_match_iteration(self):
        records = self._result().records
        boxed = list(records)
        assert all(isinstance(r, OnlineRequestRecord) for r in boxed)
        assert records[2] == boxed[2]
        assert records[-1] == boxed[-1]
        assert list(records[1:4]) == boxed[1:4]
        gathered = records[np.array([3, 0], dtype=np.int64)]
        assert isinstance(gathered, RecordSequence)
        assert list(gathered) == [boxed[3], boxed[0]]
        with pytest.raises(IndexError):
            records[5]

    def test_equality_against_tuples_both_ways(self):
        records = self._result().records
        boxed = tuple(records)
        assert records == boxed
        assert boxed == records  # reflected comparison
        assert records == self._result().records
        mutated = boxed[:-1] + (
            OnlineRequestRecord(
                request_id=99, input_len=1, output_len=1, arrival_s=0.0
            ),
        )
        assert records != mutated
        assert records != boxed[:-1]

"""Parity tests for the serving hot-loop fast paths.

The online servers ship three stacked optimisations -- columnar plan
buffers, the memoized pricing cache, and the plan-free steady-state
templates (``mixed_decode_template`` / ``decode_run``) -- all of which are
required to be *invisible* in the results: every record a server produces
with the fast paths on must be bit-identical to the legacy plan-per-cycle
path and to the full scalar pricing reference.  These tests pin that
contract for every server family (continuous batching over Orca and vLLM,
ExeGPT RRA and WAA), plus the bisection refinement of
``OnlineEvaluator.max_sustainable_qps`` against its ladder-only reference.
"""

from __future__ import annotations

import pytest

from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineEvaluator,
)
from repro.serving.sla import SLA, SLAKind
from repro.workloads.arrivals import PoissonProcess, attach_arrivals
from repro.workloads.synthetic import generate_trace_from_distributions

# Fast paths fully on (the shipping default), the legacy batched plan path,
# and the scalar pricing reference.  ``plan_templates=True`` with scalar
# pricing must also fall back to the legacy path (templates require the
# batched pricer), so it rides along as a fourth mode.
MODES = {
    "fast": dict(plan_templates=True, pricing_cache=True, batched_pricing=True),
    "plans": dict(plan_templates=False, pricing_cache=False, batched_pricing=True),
    "scalar": dict(plan_templates=False, pricing_cache=False, batched_pricing=False),
    "templates-scalar": dict(
        plan_templates=True, pricing_cache=True, batched_pricing=False
    ),
}


@pytest.fixture(scope="module")
def parity_trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=96, seed=17,
        name="templates",
    )


def assert_all_modes_identical(results):
    reference = results["scalar"]
    assert reference.completed > 0
    for mode, result in results.items():
        assert result.records == reference.records, mode
        assert result.completed == reference.completed, mode
        assert result.rejected == reference.rejected, mode
        assert result.makespan_s == reference.makespan_s, mode


class TestContinuousBatchingTemplateParity:
    @pytest.mark.parametrize("system_cls", [Orca, Vllm])
    @pytest.mark.parametrize("rate", [20.0, 200.0])
    def test_all_modes_bit_identical(
        self, tiny_profile, short_input_dist, short_output_dist, parity_trace,
        system_cls, rate,
    ):
        online = attach_arrivals(parity_trace, PoissonProcess(rate), seed=11)
        results = {}
        for mode, flags in MODES.items():
            system = system_cls(
                profile=tiny_profile,
                input_distribution=short_input_dist,
                output_distribution=short_output_dist,
            )
            server = ContinuousBatchingOnlineServer(
                system=system, batch_size=16, max_queue=64, **flags
            )
            results[mode] = server.serve(
                online, scenario="steady", offered_rate_qps=rate
            )
        assert_all_modes_identical(results)

    def test_fast_path_engine_reports_cache_stats(
        self, tiny_profile, short_input_dist, short_output_dist, parity_trace
    ):
        system = Orca(
            profile=tiny_profile,
            input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )
        server = ContinuousBatchingOnlineServer(system=system, batch_size=16)
        online = attach_arrivals(parity_trace, PoissonProcess(50.0), seed=11)
        server.serve(online)
        stats = server._engine.pricing_cache_stats()
        # Tiny single-stage plans sit below the scalar/batched crossover, so
        # the counters may stay zero here -- cache *activity* is asserted by
        # the perf bench at paper scale; this pins that the engine owns a
        # live cache and reports well-formed stats.
        assert stats is not None
        assert set(stats) >= {"hits", "misses", "hit_rate", "size", "max_entries"}
        scalar = ContinuousBatchingOnlineServer(
            system=system, batch_size=16, batched_pricing=False
        )
        scalar.serve(online)
        assert scalar._engine.pricing_cache_stats() is None

    def test_clone_preserves_fast_path_flags(
        self, tiny_profile, short_input_dist, short_output_dist
    ):
        system = Orca(
            profile=tiny_profile,
            input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )
        server = ContinuousBatchingOnlineServer(
            system=system, batch_size=16, plan_templates=False,
            pricing_cache=False, batched_pricing=False,
        )
        clone = server.clone("copy")
        assert clone.plan_templates is False
        assert clone.pricing_cache is False
        assert clone.batched_pricing is False


class TestExeGPTTemplateParity:
    @pytest.mark.parametrize(
        "config",
        [
            ScheduleConfig(
                policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
            ),
            ScheduleConfig(
                policy=SchedulePolicy.RRA, encode_batch=16, decode_iterations=12
            ),
            ScheduleConfig(
                policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
            ),
        ],
        ids=["rra-short", "rra-long", "waa"],
    )
    @pytest.mark.parametrize("rate", [10.0, 120.0])
    def test_all_modes_bit_identical(
        self, tiny_simulator, parity_trace, config, rate
    ):
        online = attach_arrivals(parity_trace, PoissonProcess(rate), seed=13)
        results = {}
        for mode, flags in MODES.items():
            server = ExeGPTOnlineServer(tiny_simulator, config, **flags)
            results[mode] = server.serve(
                online, scenario="steady", offered_rate_qps=rate
            )
        assert_all_modes_identical(results)

    def test_clone_preserves_fast_path_flags(self, tiny_simulator):
        config = ScheduleConfig(
            policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
        )
        server = ExeGPTOnlineServer(
            tiny_simulator, config, plan_templates=False, pricing_cache=False
        )
        clone = server.clone("copy")
        assert clone.plan_templates is False
        assert clone.pricing_cache is False


class TestBisectionRefinement:
    @pytest.fixture(scope="class")
    def evaluator(self, tiny_engine, short_input_dist, short_output_dist):
        trace = generate_trace_from_distributions(
            short_input_dist, short_output_dist, num_requests=48, seed=21,
            name="bisect",
        )
        slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=2.0, percentile=99.0)
        return OnlineEvaluator(tiny_engine, trace, slo, max_queue=16, seed=3)

    def test_refine_zero_is_the_ladder_reference(self, evaluator):
        rates = (1.0, 1e6)
        ladder = evaluator.max_sustainable_qps("orca", "steady", rates)
        explicit = evaluator.max_sustainable_qps(
            "orca", "steady", rates, refine_steps=0
        )
        assert ladder == explicit == 1.0

    def test_refinement_tightens_the_bracket(self, evaluator):
        rates = (1.0, 1e6)
        coarse = evaluator.max_sustainable_qps("orca", "steady", rates)
        refined = evaluator.max_sustainable_qps(
            "orca", "steady", rates, refine_steps=4
        )
        # Refinement only ever moves the estimate up, inside the bracket,
        # and each step halves it: after 4 steps at least a 16x tighter
        # bound than the raw ladder gap.
        assert coarse <= refined < 1e6
        assert refined >= coarse
        gap = 1e6 - coarse
        assert refined <= coarse + gap  # stays inside the bracket
        # The refined rate itself must be sustainable under the SLO.
        from repro.serving.online import make_scenario

        point = evaluator.measure(
            "orca", make_scenario("steady", refined), scenario="steady"
        )
        assert point.sustainable

    def test_no_bracket_means_no_refinement(self, evaluator):
        # All rates sustainable: nothing to bisect, ladder result returned.
        sustainable_only = evaluator.max_sustainable_qps(
            "orca", "steady", (0.5, 1.0), refine_steps=3
        )
        assert sustainable_only == 1.0
        # No rate sustainable: capacity is 0 and refinement stays silent.
        hopeless = evaluator.max_sustainable_qps(
            "orca", "steady", (1e6,), refine_steps=3
        )
        assert hopeless == 0.0

"""Integration tests for the online arrival-driven serving simulator."""

import pytest

from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineEvaluator,
    OnlineResult,
)
from repro.serving.sla import SLA, SLAKind
from repro.workloads.arrivals import PoissonProcess, attach_arrivals
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def base_trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=64, seed=9, name="online"
    )


def make_orca_server(profile, in_dist, out_dist, batch_size=16, max_queue=512):
    system = Orca(
        profile=profile, input_distribution=in_dist, output_distribution=out_dist
    )
    return ContinuousBatchingOnlineServer(
        system=system, batch_size=batch_size, max_queue=max_queue
    )


class TestConservation:
    @pytest.mark.parametrize("rate", [2.0, 50.0, 2000.0])
    def test_offered_equals_completed_plus_rejected(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace, rate
    ):
        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist, max_queue=8
        )
        online = attach_arrivals(base_trace, PoissonProcess(rate), seed=3)
        result = server.serve(online, scenario="steady", offered_rate_qps=rate)
        assert result.offered == len(base_trace)
        assert result.completed + result.rejected == result.offered
        # Every non-rejected request finished with ordered timestamps.
        for record in result.records:
            if record.rejected:
                assert not record.completed
                assert record.admitted_s < 0
            else:
                assert record.completed
                assert record.arrival_s <= record.admitted_s + 1e-9
                assert record.admitted_s <= record.first_token_s + 1e-9
                assert record.first_token_s <= record.finish_s + 1e-9

    def test_exegpt_rra_conserves(self, tiny_simulator, base_trace):
        config = ScheduleConfig(
            policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
        )
        server = ExeGPTOnlineServer(tiny_simulator, config)
        online = attach_arrivals(base_trace, PoissonProcess(20.0), seed=5)
        result = server.serve(online)
        assert result.completed + result.rejected == result.offered
        assert result.completed == result.offered  # ample queue: no drops

    def test_exegpt_waa_conserves(self, tiny_simulator, base_trace):
        config = ScheduleConfig(
            policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
        )
        server = ExeGPTOnlineServer(tiny_simulator, config)
        online = attach_arrivals(base_trace, PoissonProcess(20.0), seed=5)
        result = server.serve(online)
        assert result.completed + result.rejected == result.offered
        assert result.completed == result.offered

    def test_waa_ingests_mid_run_arrivals(self, tiny_simulator):
        """A straggler arriving while WAA decodes is admitted promptly.

        Regression test: the WAA clock must keep advancing through
        decode-only iterations, or arrivals sit unseen until the whole
        standing pool drains.
        """
        from repro.workloads.trace import RequestSpec, WorkloadTrace

        in_dist = tiny_simulator.input_distribution
        out_dist = tiny_simulator.output_distribution
        config = ScheduleConfig(
            policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
        )
        head = [RequestSpec(i, 48, 40, 0.0) for i in range(16)]
        head_run = ExeGPTOnlineServer(tiny_simulator, config).serve(
            WorkloadTrace("head", head, in_dist, out_dist)
        )
        mid = head_run.makespan_s / 2
        trace = WorkloadTrace(
            "late", head + [RequestSpec(16, 48, 8, mid)], in_dist, out_dist
        )
        result = ExeGPTOnlineServer(tiny_simulator, config).serve(trace)
        late = result.records[16]
        assert result.completed == 17
        assert late.admitted_s >= late.arrival_s - 1e-9
        # Admitted while the pool is still draining, not after it empties.
        assert late.admitted_s < 0.75 * head_run.makespan_s


class TestLatencySemantics:
    def test_sparse_arrivals_have_no_queueing(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        """At a trickle rate each request is served alone on arrival."""
        server = make_orca_server(tiny_profile, short_input_dist, short_output_dist)
        online = attach_arrivals(base_trace, PoissonProcess(0.05), seed=2)
        result = server.serve(online)
        assert result.completed == result.offered
        assert result.queue_delay_percentile(99) == pytest.approx(0.0, abs=1e-6)
        # Makespan extends past the last arrival (requests arrive over time).
        assert result.makespan_s > max(r.arrival_s for r in result.records)

    def test_ttft_precedes_latency(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        server = make_orca_server(tiny_profile, short_input_dist, short_output_dist)
        online = attach_arrivals(base_trace, PoissonProcess(20.0), seed=2)
        result = server.serve(online)
        assert 0 < result.ttft_percentile(99) <= result.latency_percentile(99)

    def test_overload_inflates_latency(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        """E2E latency at heavy load dominates the uncontended latency."""
        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist, batch_size=4
        )
        calm = server.serve(attach_arrivals(base_trace, PoissonProcess(0.05), seed=2))
        busy = server.serve(attach_arrivals(base_trace, PoissonProcess(500.0), seed=2))
        assert busy.mean_latency_s > calm.mean_latency_s


class TestSLAIntegration:
    def test_monotone_sla_degradation(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        """SLO attainment never improves as the offered rate rises."""
        slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=0.5, percentile=99.0)
        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist,
            batch_size=8, max_queue=8,
        )
        attainments = []
        for rate in (5.0, 50.0, 500.0, 5000.0):
            online = attach_arrivals(base_trace, PoissonProcess(rate), seed=3)
            attainments.append(server.serve(online).attainment(slo))
        assert attainments[0] == pytest.approx(1.0)
        for lower, higher in zip(attainments, attainments[1:]):
            assert higher <= lower + 0.05
        assert attainments[-1] < attainments[0]

    def test_to_run_result_feeds_sla(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        server = make_orca_server(tiny_profile, short_input_dist, short_output_dist)
        online = attach_arrivals(base_trace, PoissonProcess(5.0), seed=3)
        result = server.serve(online)
        run_result = result.to_run_result()
        assert run_result.num_requests == result.completed
        assert run_result.p99_latency_s == pytest.approx(
            result.latency_percentile(99.0)
        )
        generous = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=1000.0)
        harsh = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=1e-6)
        assert result.satisfies(generous)
        assert not result.satisfies(harsh)

    def test_rejections_break_sustainability(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist,
            batch_size=2, max_queue=2,
        )
        online = attach_arrivals(base_trace, PoissonProcess(5000.0), seed=3)
        result = server.serve(online)
        assert result.rejected > 0
        generous = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=1000.0)
        assert not result.satisfies(generous)
        assert result.satisfies(generous, max_rejection_rate=1.0)
        assert result.attainment(generous) < 1.0


class TestAggregateCaching:
    """OnlineResult aggregates are computed once, not per property access.

    Regression test for the O(n)-per-call aggregation: rate sweeps touch
    ``completed``/``rejected``/percentiles many times per run, so the
    summary must come from one cached pass over the records rather than a
    fresh scan on every access.
    """

    def _result(self):
        from repro.serving.online import OnlineRequestRecord

        records = tuple(
            OnlineRequestRecord(
                request_id=i,
                input_len=8,
                output_len=4,
                arrival_s=0.1 * i,
                admitted_s=0.1 * i + 0.05,
                first_token_s=0.1 * i + 0.2,
                finish_s=0.1 * i + 1.0 if i % 3 else -1.0,
                rejected=(i % 3 == 0),
            )
            for i in range(30)
        )
        return OnlineResult(
            system="t", scenario="s", offered_rate_qps=1.0,
            records=records, makespan_s=10.0,
        )

    def test_summary_matches_naive_recomputation(self):
        result = self._result()
        assert result.completed == sum(1 for r in result.records if r.completed)
        assert result.rejected == sum(1 for r in result.records if r.rejected)
        naive = sorted(
            r.latency_s for r in result.records if r.completed and r.latency_s >= 0
        )
        assert result.latency_percentile(100.0) == pytest.approx(naive[-1])
        assert result.mean_latency_s == pytest.approx(sum(naive) / len(naive))

    def test_aggregates_scan_records_once(self):
        result = self._result()
        before = result.completed
        assert "_columns" in result.__dict__  # summary pass ran and cached
        # Mutating a record after the first access must not change the
        # aggregates: they come from the cached columns, not a re-scan.
        result.records[1].finish_s = -1.0
        assert result.completed == before
        assert result.to_run_result().num_requests == before


class TestQueueBoundSemantics:
    """`max_queue` is the replica-local admission-queue capacity, enforced
    at handoff: `enqueue` refuses exactly at capacity, a refused arrival is
    rejected permanently, and rejection accounting is the single place
    requests can drop -- the semantics the fleet boundary relies on."""

    def test_enqueue_refuses_exactly_at_capacity(
        self, tiny_profile, short_input_dist, short_output_dist
    ):
        from repro.engine.pool import RequestPool
        from repro.engine.timeline import Timeline
        from repro.workloads.trace import RequestSpec, WorkloadTrace

        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist, max_queue=2
        )
        trace = WorkloadTrace(
            "t",
            [RequestSpec(i, 8, 2, 0.0) for i in range(4)],
            short_input_dist,
            short_output_dist,
        )
        server.reset(Timeline(), RequestPool.from_trace(trace))
        assert server.queue_depth == 0
        assert server.enqueue(0)
        assert server.enqueue(1)
        assert server.queue_depth == 2
        # At capacity: refused, no side effects, never retried by contract.
        assert not server.enqueue(2)
        assert server.queue_depth == 2

    def test_rejected_arrivals_never_served(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        server = make_orca_server(
            tiny_profile, short_input_dist, short_output_dist,
            batch_size=4, max_queue=4,
        )
        online = attach_arrivals(base_trace, PoissonProcess(5000.0), seed=3)
        result = server.serve(online)
        assert result.rejected > 0
        assert result.completed + result.rejected == result.offered
        for record in result.records:
            if record.rejected:
                assert record.admitted_s < 0
                assert record.first_token_s < 0
                assert not record.completed

    def test_max_queue_validated(self):
        from repro.serving.online import OnlineServer

        with pytest.raises(ValueError):
            OnlineServer(name="bad", max_queue=0)


class TestPagedCacheDriver:
    def test_vllm_driver_uses_paged_cache(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace
    ):
        system = Vllm(
            profile=tiny_profile,
            input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )
        server = ContinuousBatchingOnlineServer(system=system, batch_size=8)
        online = attach_arrivals(base_trace, PoissonProcess(50.0), seed=1)
        result = server.serve(online)
        assert result.completed == result.offered
        assert result.extra["peak_kv_gib"] > 0


class TestOnlineEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, tiny_engine, base_trace):
        slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=2.0, percentile=99.0)
        return OnlineEvaluator(tiny_engine, base_trace, slo, max_queue=16, seed=3)

    def test_servers_are_cached(self, evaluator):
        assert evaluator.server("orca") is evaluator.server("orca")

    def test_unknown_system_rejected(self, evaluator):
        with pytest.raises(KeyError):
            evaluator.server("triton")

    def test_sweep_stops_after_failure(self, evaluator):
        points = evaluator.sweep(
            "orca", "steady", rates=(1.0, 10.0, 1e5, 1e6), stop_after_failure=True
        )
        # Once a rate fails, higher rates are not simulated.
        failed = [p for p in points if not p.sustainable]
        assert len(failed) <= 1
        if failed:
            assert points[-1] is failed[0]

    def test_max_sustainable_qps_brackets_capacity(self, evaluator):
        rates = (1.0, 1e6)
        qps = evaluator.max_sustainable_qps("orca", "steady", rates)
        assert qps == 1.0  # sustainable at a trickle, not at a million QPS

    def test_exegpt_schedule_found(self, evaluator):
        server = evaluator.server("exegpt")
        point = evaluator.measure("exegpt", PoissonProcess(2.0), scenario="steady")
        assert point.sustainable
        assert point.result.system == server.name

    def test_evaluate_builds_capacity_table(self, evaluator):
        table = evaluator.evaluate(
            systems=("exegpt", "orca"), scenarios=("steady",), rates=(1.0, 2.0)
        )
        assert set(table) == {("exegpt", "steady"), ("orca", "steady")}
        for qps in table.values():
            assert qps in (0.0, 1.0, 2.0)

    def test_estimate_context_shared_across_sweep(self, evaluator, tiny_engine):
        """One EstimateContext backs the whole sweep.

        The memoization lives on the simulator; the evaluator forces and
        pins that context at construction, and rate sweeps and server
        builds must keep hitting the same memo (placements included) --
        nothing may rebuild the context or re-search per offered rate.
        """
        context_before = evaluator.context
        assert context_before is tiny_engine.simulator.context
        server = evaluator.server("exegpt")
        # The server's placement is the context's memoized one, not a rebuild.
        assert server.placement is context_before.placement_for(server.config)
        evaluator.sweep("exegpt", "steady", rates=(0.5, 1.0))
        assert evaluator.context is context_before
        assert tiny_engine.simulator.context is context_before
        # Sweeping again reuses the cached server (one schedule search per
        # system for the evaluator's lifetime).
        assert evaluator.server("exegpt") is server

"""Tests for the latency-bound derivation procedure."""

import pytest

from repro.baselines.faster_transformer import FasterTransformer
from repro.serving.latency_bounds import derive_latency_bounds, ft_latency_range


@pytest.fixture(scope="module")
def ft(tiny_profile, short_input_dist, short_output_dist) -> FasterTransformer:
    return FasterTransformer(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )


class TestLatencyBounds:
    def test_latency_range_is_increasing_in_batch(self, ft):
        latencies = ft_latency_range(ft, min_batch=4, max_batch=32, step=4)
        assert len(latencies) == 8
        assert latencies == sorted(latencies)

    def test_four_bounds_ordered(self, ft):
        bounds = derive_latency_bounds(ft, target_length=32, max_batch=32)
        ordered = bounds.as_list()
        assert len(ordered) == 4
        assert ordered[0].bound_s < ordered[1].bound_s < ordered[2].bound_s
        assert ordered[3].is_unbounded
        assert [b.label for b in ordered] == ["10%", "30%", "70%", "Inf"]

    def test_bounds_carry_target_length(self, ft):
        bounds = derive_latency_bounds(ft, target_length=40, max_batch=16)
        assert all(b.target_length == 40 for b in bounds)

    def test_bounds_bracket_ft_latency_range(self, ft):
        latencies = ft_latency_range(ft, min_batch=4, max_batch=32, step=4)
        bounds = derive_latency_bounds(ft, target_length=32, max_batch=32)
        assert latencies[0] <= bounds.tight.bound_s <= latencies[-1]
        assert latencies[0] <= bounds.relaxed.bound_s <= latencies[-1]

    def test_invalid_sweep_rejected(self, ft):
        with pytest.raises(ValueError):
            ft_latency_range(ft, min_batch=0, max_batch=8)
        with pytest.raises(ValueError):
            ft_latency_range(ft, min_batch=8, max_batch=4)

"""Tests for SLA definitions."""

import pytest

from repro.engine.metrics import RunResult
from repro.serving.sla import SLA, SLAKind


def _result(latencies) -> RunResult:
    return RunResult(
        system="x",
        makespan_s=10.0,
        num_requests=len(latencies),
        total_generated_tokens=10,
        latencies_s=tuple(latencies),
    )


class TestSLA:
    def test_percentile_sla_satisfied(self):
        sla = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=5.0)
        assert sla.satisfied(_result([1.0] * 99 + [4.9]))
        assert not sla.satisfied(_result([1.0] * 50 + [6.0] * 50))

    def test_reference_length_sla_uses_max(self):
        sla = SLA(kind=SLAKind.REFERENCE_LENGTH, bound_s=5.0, reference_length=64)
        assert not sla.satisfied(_result([1.0, 6.0]))
        assert sla.satisfied(_result([1.0, 4.0]))

    def test_violation_sign(self):
        sla = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=2.0)
        assert sla.violation(_result([1.0] * 100)) < 0
        assert sla.violation(_result([3.0] * 100)) > 0

    def test_required_margin(self):
        sla = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=2.0)
        assert sla.required_margin(_result([1.0] * 10)) == 0.0
        margin = sla.required_margin(_result([4.0] * 10))
        assert margin == pytest.approx(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=0.0)
        with pytest.raises(ValueError):
            SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=1.0, percentile=0.0)

"""Tests for the scenario evaluation harness."""

import pytest

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.serving.evaluation import (
    ScenarioEvaluation,
    default_baselines,
    measure_baseline,
    measure_exegpt,
    speedup_over,
)
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=64, seed=9
    )


class TestDefaultBaselines:
    def test_instantiates_requested_systems(self, tiny_engine):
        systems = default_baselines(tiny_engine, ("ft", "dsi", "orca", "vllm"))
        assert [s.name for s in systems] == ["ft", "dsi", "orca", "vllm"]

    def test_unknown_baseline_rejected(self, tiny_engine):
        with pytest.raises(KeyError):
            default_baselines(tiny_engine, ("tensorrt",))


class TestMeasurement:
    def test_measure_baseline_reports_batch(self, tiny_engine, trace):
        (ft,) = default_baselines(tiny_engine, ("ft",))
        constraint = LatencyConstraint(bound_s=float("inf"), label="Inf")
        row = measure_baseline(ft, trace, constraint)
        assert row.system == "ft"
        assert row.throughput_seq_per_s > 0
        assert row.bound_label == "Inf"
        assert row.config_description.startswith("batch=")

    def test_measure_exegpt_reports_schedule(self, tiny_engine, trace):
        constraint = LatencyConstraint(bound_s=float("inf"), label="Inf")
        row = measure_exegpt(tiny_engine, trace, constraint, policies=(SchedulePolicy.RRA,))
        assert row.system.startswith("exegpt")
        assert row.throughput_seq_per_s > 0
        assert "B_E=" in row.config_description

    def test_measure_exegpt_infeasible_bound_reports_ns(self, tiny_engine, trace):
        constraint = LatencyConstraint(bound_s=1e-6, label="tight")
        row = measure_exegpt(tiny_engine, trace, constraint)
        assert row.config_description == "NS"
        assert row.throughput_seq_per_s == 0.0
        assert not row.satisfied

    def test_scenario_evaluation_collects_all_systems(self, tiny_engine, trace):
        evaluation = ScenarioEvaluation(
            engine=tiny_engine,
            trace=trace,
            baselines=default_baselines(tiny_engine, ("ft",)),
        )
        rows = evaluation.evaluate(
            [LatencyConstraint(bound_s=float("inf"), label="Inf")],
            policies=(SchedulePolicy.RRA,),
        )
        assert len(rows) == 2
        speedups = speedup_over(rows)
        assert "Inf" in speedups and speedups["Inf"] > 0

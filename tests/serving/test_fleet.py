"""Tests for the multi-replica routing fleet (`repro.serving.fleet`).

The parity gate: because `Fleet.serve` drives the same `ServingLoop` over
the same steppable-replica API as `OnlineServer.serve`, a 1-replica fleet
must reproduce the single server's per-request records *bit-identically*
for every driver (ORCA / vLLM continuous batching, ExeGPT RRA and WAA) and
every routing policy.  On top of that: routing quality (JSQ beats
round-robin on a skewed bursty workload), pinned deterministic
tie-breaking, rejection accounting at the fleet boundary, and the
capacity acceptance bar (a 4-replica JSQ fleet sustains strictly more
fleet-wide QPS than one replica).
"""

import numpy as np
import pytest

from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.serving.fleet import (
    Fleet,
    FleetResult,
    JoinShortestQueueRouting,
    LeastOutstandingWorkRouting,
    RoundRobinRouting,
    make_routing,
)
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineEvaluator,
)
from repro.serving.sla import SLA, SLAKind
from repro.workloads.arrivals import BurstyProcess, PoissonProcess, attach_arrivals
from repro.workloads.synthetic import generate_trace_from_distributions
from repro.workloads.trace import RequestSpec, WorkloadTrace


@pytest.fixture(scope="module")
def base_trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=64, seed=9, name="fleet"
    )


def _server(kind, profile, in_dist, out_dist, simulator, **kwargs):
    """One of the four online drivers, by name."""
    if kind in ("orca", "vllm"):
        cls = Orca if kind == "orca" else Vllm
        system = cls(
            profile=profile,
            input_distribution=in_dist,
            output_distribution=out_dist,
        )
        return ContinuousBatchingOnlineServer(
            system=system, batch_size=kwargs.get("batch_size", 8),
            max_queue=kwargs.get("max_queue", 512),
        )
    if kind == "rra":
        config = ScheduleConfig(
            policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
        )
    else:  # waa
        config = ScheduleConfig(
            policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
        )
    return ExeGPTOnlineServer(
        simulator, config, max_queue=kwargs.get("max_queue", 512)
    )


class TestSingleReplicaParity:
    """A 1-replica fleet IS the single server: records bit for bit."""

    @pytest.mark.parametrize("kind", ["orca", "vllm", "rra", "waa"])
    @pytest.mark.parametrize("routing", ["round-robin", "jsq", "least-outstanding-work"])
    def test_one_replica_fleet_matches_server(
        self, kind, routing, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            kind, tiny_profile, short_input_dist, short_output_dist, tiny_simulator
        )
        online = attach_arrivals(base_trace, PoissonProcess(20.0), seed=5)
        single = server.serve(online, scenario="steady", offered_rate_qps=20.0)
        fleet = Fleet.homogeneous(server, 1, routing=routing)
        result = fleet.serve(online, scenario="steady", offered_rate_qps=20.0)
        # Bit-identical per-request records: every timestamp, every flag.
        assert result.fleet.records == single.records
        assert result.fleet.makespan_s == single.makespan_s
        assert result.offered == single.offered
        assert result.completed == single.completed
        # The one replica served everything that was not rejected.
        assert np.array_equal(
            result.assignments >= 0,
            np.array([not r.rejected for r in single.records]),
        )

    def test_one_replica_fleet_matches_server_under_rejections(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
        base_trace,
    ):
        """Fleet and single-server rejection accounting agree by construction."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4, max_queue=4,
        )
        online = attach_arrivals(base_trace, PoissonProcess(2000.0), seed=3)
        single = server.serve(online)
        result = Fleet.homogeneous(server, 1, routing="jsq").serve(online)
        assert single.rejected > 0
        assert result.fleet.records == single.records
        assert result.rejected == single.rejected
        assert result.fleet.rejection_rate == single.rejection_rate


class TestRoutingPolicies:
    def test_make_routing_registry(self):
        assert isinstance(make_routing("rr"), RoundRobinRouting)
        assert isinstance(make_routing("jsq"), JoinShortestQueueRouting)
        assert isinstance(make_routing("low"), LeastOutstandingWorkRouting)
        policy = JoinShortestQueueRouting()
        assert make_routing(policy) is policy
        with pytest.raises(KeyError):
            make_routing("random")

    def test_deterministic_tie_breaking_pinned(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
    ):
        """Equal-state replicas are tied; the lower index must win, and the
        resulting assignment of a simultaneous burst is pinned exactly."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        specs = [RequestSpec(i, 48, 4, 0.0) for i in range(9)]
        trace = WorkloadTrace("burst", specs, short_input_dist, short_output_dist)
        for routing in ("round-robin", "jsq", "least-outstanding-work"):
            result = Fleet.homogeneous(server, 3, routing=routing).serve(trace)
            # All nine arrive at t=0 with all replicas idle and equal:
            # every policy must deal them out cyclically from replica 0.
            assert result.assignments.tolist() == [0, 1, 2] * 3, routing

    def test_jsq_beats_round_robin_on_skewed_bursty(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
    ):
        """Round-robin deals by count, so the alternating heavy requests all
        pile onto the same replica; JSQ sees the imbalance and spreads them."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4,
        )
        specs = [
            RequestSpec(i, 48, 36 if i % 2 == 0 else 2, 0.0) for i in range(64)
        ]
        trace = WorkloadTrace("skew", specs, short_input_dist, short_output_dist)
        online = attach_arrivals(
            trace,
            BurstyProcess(200.0, burst_factor=8.0, burst_fraction=0.1),
            seed=7,
        )
        results = {
            routing: Fleet.homogeneous(server, 2, routing=routing).serve(online)
            for routing in ("round-robin", "jsq")
        }
        assert results["jsq"].completed == results["jsq"].offered
        assert (
            results["jsq"].fleet.mean_latency_s
            < results["round-robin"].fleet.mean_latency_s
        )
        assert (
            results["jsq"].fleet.latency_percentile(99)
            < results["round-robin"].fleet.latency_percentile(99)
        )

    def test_least_outstanding_work_prices_replicas(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
        base_trace,
    ):
        """LOW routes by drain time and completes everything; the service
        rates come from the replicas' cost models (positive, finite)."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        assert 0 < server.service_rate() < float("inf")
        online = attach_arrivals(base_trace, PoissonProcess(100.0), seed=5)
        result = Fleet.homogeneous(server, 3, routing="low").serve(online)
        assert result.completed == result.offered
        counts = result.routed_counts()
        assert counts.sum() == result.offered
        assert (counts > 0).all()  # work was actually spread


class TestEventLoopFidelity:
    def test_idle_replica_picks_up_arrival_immediately(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
    ):
        """Regression: while one replica grinds through a long request, an
        arrival must be routed to an idle replica at its *arrival* time --
        the loop may not fast-forward the clock to the busy replica's next
        ready time before ingesting."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=2,
        )
        head = WorkloadTrace(
            "head",
            [RequestSpec(0, 48, 40, 0.0)],
            short_input_dist,
            short_output_dist,
        )
        head_run = server.serve(head)
        mid = head_run.makespan_s / 2
        trace = WorkloadTrace(
            "late",
            [RequestSpec(0, 48, 40, 0.0), RequestSpec(1, 48, 2, mid)],
            short_input_dist,
            short_output_dist,
        )
        result = Fleet.homogeneous(server, 2, routing="jsq").serve(trace)
        late = result.fleet.records[1]
        # JSQ sends the straggler to the idle replica 1, which admits it
        # the moment it arrives -- zero queueing delay.
        assert result.assignments.tolist() == [0, 1]
        assert late.admitted_s == pytest.approx(late.arrival_s, abs=1e-9)

    def test_in_flight_counts_handover(self, tiny_simulator):
        """WAA's in-flight count includes batches parked in the KV handover."""
        from repro.engine.pool import RequestPool
        from repro.engine.timeline import Timeline
        from repro.workloads.trace import RequestSpec, WorkloadTrace

        config = ScheduleConfig(
            policy=SchedulePolicy.WAA_C, encode_batch=4, micro_batches=2
        )
        server = ExeGPTOnlineServer(tiny_simulator, config)
        in_dist = tiny_simulator.input_distribution
        out_dist = tiny_simulator.output_distribution
        trace = WorkloadTrace(
            "t", [RequestSpec(i, 48, 8, 0.0) for i in range(4)], in_dist, out_dist
        )
        server.reset(Timeline(), RequestPool.from_trace(trace))
        for rid in range(4):
            assert server.enqueue(rid)
        server.iterate(0.0)
        # The first WAA cycle encodes the batch into the handover (or merges
        # it straight into the decode pool); either way all four ids are in
        # flight and the O(1) count agrees with the materialized ids.
        assert server.in_flight == server._in_flight_ids().size == 4
        assert server.busy


class TestFleetBoundary:
    def test_rejections_only_at_routing_boundary(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
        base_trace,
    ):
        """An arrival is rejected iff every replica's queue is full; rejected
        ids belong to no replica and are never served."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=2, max_queue=2,
        )
        online = attach_arrivals(base_trace, PoissonProcess(5000.0), seed=3)
        result = Fleet.homogeneous(server, 2, routing="jsq").serve(online)
        assert result.rejected > 0
        assert result.completed + result.rejected == result.offered
        for rid, record in enumerate(result.fleet.records):
            if record.rejected:
                assert result.assignments[rid] == -1
                assert record.admitted_s < 0
                assert not record.completed
            else:
                assert result.assignments[rid] >= 0
                assert record.completed
        # Per-replica results partition the served requests.
        assert sum(r.offered for r in result.replicas) == (
            result.offered - result.rejected
        )
        assert sum(r.completed for r in result.replicas) == result.completed

    def test_fleet_result_delegates(self, tiny_profile, short_input_dist,
                                    short_output_dist, tiny_simulator, base_trace):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(10.0), seed=5)
        result = Fleet.homogeneous(server, 2, routing="jsq").serve(online)
        assert isinstance(result, FleetResult)
        assert result.num_replicas == 2
        assert result.makespan_s == result.fleet.makespan_s
        assert result.fleet.extra["replicas"] == 2.0
        generous = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=1000.0)
        assert result.satisfies(generous)
        assert result.attainment(generous) == 1.0
        # Replica iteration counts are recorded per replica and sum to the
        # fleet-wide total.
        total = sum(r.extra["iterations"] for r in result.replicas)
        assert total == result.fleet.extra["iterations"]

    def test_empty_trace_rejected(self, tiny_profile, short_input_dist,
                                  short_output_dist, tiny_simulator):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        fleet = Fleet.homogeneous(server, 2)
        empty = WorkloadTrace("empty", (), short_input_dist, short_output_dist)
        with pytest.raises(ValueError):
            fleet.serve(empty)

    def test_duplicate_replica_objects_rejected(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator
    ):
        """One server object cannot be stepped as two replicas."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        with pytest.raises(ValueError, match="distinct"):
            Fleet([server, server], routing="jsq")

    def test_clone_leaves_prototype_untouched(
        self, tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
        base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(20.0), seed=5)
        before = server.serve(online)
        fleet = Fleet.homogeneous(server, 3, routing="jsq")
        assert all(clone is not server for clone in fleet.replicas)
        fleet.serve(online)
        after = server.serve(online)
        assert before.records == after.records


class TestFleetCapacity:
    """Acceptance: a >=4-replica JSQ fleet sustains strictly higher
    fleet-wide QPS than a single replica on the same scenario."""

    @pytest.fixture(scope="class")
    def evaluator(self, tiny_engine, base_trace):
        slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=2.0, percentile=99.0)
        return OnlineEvaluator(tiny_engine, base_trace, slo, max_queue=16, seed=3)

    def test_four_replica_jsq_beats_one(self, evaluator):
        rates = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0)
        single = evaluator.max_sustainable_qps("orca", "steady", rates)
        fleet = evaluator.max_sustainable_qps(
            "orca", "steady", rates, replicas=4, routing="jsq"
        )
        assert single > 0
        assert fleet > single

    def test_fleet_measure_returns_fleet_result(self, evaluator):
        point = evaluator.measure(
            "orca", PoissonProcess(50.0), scenario="steady",
            replicas=4, routing="jsq",
        )
        assert point.result.extra["replicas"] == 4.0
        assert point.result.offered == point.result.completed + point.result.rejected

    def test_fleets_are_cached(self, evaluator):
        first = evaluator.fleet("orca", 2, "jsq")
        assert evaluator.fleet("orca", 2, "jsq") is first
        assert evaluator.fleet("orca", 3, "jsq") is not first
        assert evaluator.fleet("orca", 2, "rr") is not first
        # Fleet replicas are clones of the one cached server (one schedule
        # search / batch configuration per system).
        assert evaluator.server("orca") is evaluator.server("orca")

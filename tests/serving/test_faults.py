"""Tests for fault injection and admission control (`repro.serving.faults`).

The two headline gates from the issue:

* **Parity** -- a fleet with fault injection *enabled but scheduling zero
  faults* (empty :class:`FaultSchedule` + :class:`AcceptAll`) reproduces
  the fault-free run bit-identically (records AND assignments) on both
  serving cores.
* **Conservation** -- under injected crashes every offered request is
  accounted for (``offered == completed + rejected + shed``) and a crashed
  replica's requeued ids complete on surviving replicas; no id is ever
  resurrected.

Plus: straggler route-around, load shedding, tenant quotas, priority
eviction/preemption, the fault-plane state machine, schedule validation,
chaos scenario registry, and fault-state convergence diagnostics.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.orca import Orca
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.engine.timeline import Timeline
from repro.serving.faults import (
    AcceptAll,
    FaultEvent,
    FaultPlane,
    FaultSchedule,
    LoadSheddingPolicy,
    PriorityAdmissionPolicy,
    TenantQuotaPolicy,
)
from repro.serving.fleet import Fleet
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    ServingLoop,
)
from repro.workloads.arrivals import (
    ChaosScenario,
    PoissonProcess,
    attach_arrivals,
    known_chaos_scenarios,
    make_chaos_scenario,
)
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def base_trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=64, seed=9, name="chaos"
    )


def _server(kind, profile, in_dist, out_dist, simulator, **kwargs):
    if kind == "orca":
        system = Orca(
            profile=profile,
            input_distribution=in_dist,
            output_distribution=out_dist,
        )
        return ContinuousBatchingOnlineServer(
            system=system,
            batch_size=kwargs.get("batch_size", 8),
            max_queue=kwargs.get("max_queue", 512),
        )
    config = ScheduleConfig(
        policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
    )
    return ExeGPTOnlineServer(
        simulator, config, max_queue=kwargs.get("max_queue", 512)
    )


# ---------------------------------------------------------------------------
# Schedules and the fault plane
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(replica=-1, down_s=0.0, up_s=1.0)
        with pytest.raises(ValueError):
            FaultEvent(replica=0, down_s=-1.0, up_s=1.0)
        with pytest.raises(ValueError):
            FaultEvent(replica=0, down_s=2.0, up_s=2.0)
        # Permanent failure is legal.
        assert math.isinf(FaultEvent(replica=0, down_s=2.0).up_s)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(warmup_s=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule(slowdowns=(0.0,))
        # Same-replica windows must not overlap, warm-up included.
        with pytest.raises(ValueError):
            FaultSchedule(events=(
                FaultEvent(0, 1.0, 3.0), FaultEvent(0, 2.0, 4.0),
            ))
        with pytest.raises(ValueError):
            FaultSchedule(
                events=(FaultEvent(0, 1.0, 3.0), FaultEvent(0, 3.5, 5.0)),
                warmup_s=1.0,
            )
        # Distinct replicas may overlap freely.
        FaultSchedule(events=(FaultEvent(0, 1.0, 3.0), FaultEvent(1, 2.0, 4.0)))

    def test_flap_is_deterministic_and_bounded(self):
        a = FaultSchedule.flap(4, mtbf_s=10.0, mttr_s=2.0, horizon_s=50.0, seed=3)
        b = FaultSchedule.flap(4, mtbf_s=10.0, mttr_s=2.0, horizon_s=50.0, seed=3)
        c = FaultSchedule.flap(4, mtbf_s=10.0, mttr_s=2.0, horizon_s=50.0, seed=4)
        assert a.events == b.events
        assert a.events != c.events
        assert a.events  # mtbf well under the horizon: flaps happen
        assert all(e.down_s < 50.0 for e in a.events)
        assert all(e.up_s > e.down_s for e in a.events)

    def test_slowdown_and_events_lookup(self):
        schedule = FaultSchedule(
            events=(FaultEvent(1, 5.0, 6.0), FaultEvent(1, 1.0, 2.0)),
            slowdowns=(2.0,),
        )
        assert schedule.slowdown_for(0) == 2.0
        assert schedule.slowdown_for(7) == 1.0
        downs = [e.down_s for e in schedule.events_for(1)]
        assert downs == [1.0, 5.0]
        assert schedule.events_for(0) == ()


class TestFaultPlane:
    def test_transition_state_machine(self):
        schedule = FaultSchedule(
            events=(FaultEvent(0, 1.0, 2.0),), warmup_s=0.5
        )
        plane = FaultPlane(schedule, 2)
        assert plane.has_downtime
        assert plane.next_time == 1.0
        assert plane.pop_due(0.5) == []
        assert plane.accepting.all()

        due = plane.pop_due(1.0)
        assert [(t, r, k) for t, r, k in due] == [(1.0, 0, "down")]
        assert not plane.accepting[0] and plane.accepting[1]
        assert plane.state(0) == "down"
        assert plane.crashes.tolist() == [1, 0]
        assert plane.next_time == 2.0

        plane.pop_due(2.0)
        assert plane.state(0) == "warming"
        assert not plane.accepting[0]  # still unroutable while warming

        plane.pop_due(2.5)
        assert plane.state(0) == "up"
        assert plane.accepting.all()
        assert plane.next_time == math.inf

    def test_empty_schedule_is_inert(self):
        plane = FaultPlane(FaultSchedule(), 3)
        assert not plane.has_downtime
        assert plane.next_time == math.inf
        assert plane.pop_due(1e9) == []
        assert plane.accepting.all()
        assert plane.states() == ["up", "up", "up"]

    def test_rejects_out_of_range_replica(self):
        schedule = FaultSchedule(events=(FaultEvent(5, 1.0, 2.0),))
        with pytest.raises(ValueError):
            FaultPlane(schedule, 2)


# ---------------------------------------------------------------------------
# The parity gate: zero scheduled faults == no fault plane, bit for bit
# ---------------------------------------------------------------------------


class TestZeroFaultParity:
    @pytest.mark.parametrize("kind", ["orca", "rra"])
    @pytest.mark.parametrize("core", ["event", "stepped"])
    def test_empty_schedule_and_accept_all_are_bit_identical(
        self, kind, core, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            kind, tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        plain = Fleet.homogeneous(server, 3, routing="jsq").serve(
            online, core=core
        )
        chaos = Fleet.homogeneous(
            server, 3, routing="jsq",
            faults=FaultSchedule(), admission=AcceptAll(),
        ).serve(online, core=core)
        assert chaos.fleet.records == plain.fleet.records
        assert np.array_equal(chaos.assignments, plain.assignments)
        assert chaos.fleet.makespan_s == plain.fleet.makespan_s
        assert chaos.crashes.tolist() == [0, 0, 0]
        assert chaos.requeued.tolist() == [0, 0, 0]
        assert plain.crashes is None and plain.requeued is None

    def test_unit_slowdowns_are_bit_identical(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        plain = Fleet.homogeneous(server, 2, routing="jsq").serve(online)
        chaos = Fleet.homogeneous(
            server, 2, routing="jsq",
            faults=FaultSchedule(slowdowns=(1.0, 1.0)),
        ).serve(online)
        assert chaos.fleet.records == plain.fleet.records
        assert np.array_equal(chaos.assignments, plain.assignments)


# ---------------------------------------------------------------------------
# Crashes: conservation and rerouting
# ---------------------------------------------------------------------------


class TestCrashes:
    @pytest.mark.parametrize("core", ["event", "stepped"])
    def test_permanent_crash_conserves_and_reroutes(
        self, core, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4,
        )
        online = attach_arrivals(base_trace, PoissonProcess(40.0), seed=7)
        baseline = Fleet.homogeneous(server, 2, routing="jsq").serve(
            online, core=core
        )
        # Kill replica 0 a third of the way through the fault-free run,
        # permanently: everything it held must drain to replica 1.
        t_down = baseline.fleet.makespan_s / 3.0
        faults = FaultSchedule(events=(FaultEvent(0, t_down),))
        result = Fleet.homogeneous(
            server, 2, routing="jsq", faults=faults
        ).serve(online, core=core)

        assert result.crashes.tolist() == [1, 0]
        assert result.requeued[0] > 0  # it held work when it died
        assert result.fleet.conserved
        assert (result.completed + result.rejected
                + result.fleet.shed) == result.offered
        cols = result.fleet.records.columns()
        # Requeued ids were re-assigned: every id whose FINAL assignment is
        # the dead replica completed (before or at the crash drain).
        assert bool(np.all(cols["finish"][result.assignments == 0] >= 0.0))
        # The survivor finished real work after the crash.
        survivor = cols["finish"][result.assignments == 1]
        assert np.count_nonzero(survivor > t_down) > 0
        # The run degraded but nothing vanished.
        assert result.completed + result.rejected == result.offered

    def test_crash_restart_flap_conserves(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "rra", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(40.0), seed=11)
        baseline = Fleet.homogeneous(server, 3, routing="jsq").serve(online)
        horizon = baseline.fleet.makespan_s
        faults = FaultSchedule.flap(
            3, mtbf_s=horizon / 4.0, mttr_s=horizon / 20.0,
            horizon_s=horizon, seed=2, warmup_s=horizon / 50.0,
        )
        assert faults.events, "flap parameters must actually schedule crashes"
        result = Fleet.homogeneous(
            server, 3, routing="jsq", faults=faults
        ).serve(online)
        assert result.crashes.sum() == len(faults.events)
        assert result.fleet.conserved
        assert result.completed + result.rejected == result.offered
        assert result.completed > 0

    @pytest.mark.parametrize("core", ["event", "stepped"])
    def test_cores_agree_on_chaos_aggregates(
        self, core, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        """Both cores apply the same fault schedule at the same times."""
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(40.0), seed=7)
        baseline = Fleet.homogeneous(server, 2, routing="jsq").serve(online)
        faults = FaultSchedule(
            events=(FaultEvent(0, baseline.fleet.makespan_s / 3.0),)
        )
        results = {
            c: Fleet.homogeneous(server, 2, routing="jsq", faults=faults).serve(
                online, core=c
            )
            for c in ("event", "stepped")
        }
        event, stepped = results["event"], results["stepped"]
        assert event.fleet.records == stepped.fleet.records
        assert np.array_equal(event.assignments, stepped.assignments)
        assert event.requeued.tolist() == stepped.requeued.tolist()


# ---------------------------------------------------------------------------
# Stragglers
# ---------------------------------------------------------------------------


class TestStragglers:
    def test_timeline_time_scale(self):
        plain = Timeline()
        slow = Timeline(time_scale=4.0)
        t0 = plain.add_task("stage", 1.0)
        t1 = slow.add_task("stage", 1.0)
        assert slow.finish_time(t1) == pytest.approx(4.0 * plain.finish_time(t0))
        with pytest.raises(ValueError):
            Timeline(time_scale=0.0)

    @pytest.mark.parametrize("routing", ["jsq", "least-outstanding-work"])
    def test_queue_aware_routing_routes_around_straggler(
        self, routing, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator,
        )
        online = attach_arrivals(base_trace, PoissonProcess(40.0), seed=13)
        result = Fleet.homogeneous(
            server, 2, routing=routing,
            faults=FaultSchedule(slowdowns=(8.0,)),
        ).serve(online)
        to_slow = int(np.count_nonzero(result.assignments == 0))
        to_fast = int(np.count_nonzero(result.assignments == 1))
        assert to_slow < to_fast
        # Per-replica splits sum back to the fleet-wide count.
        assert (result.replicas[0].completed + result.replicas[1].completed
                == result.completed)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_load_shedding_sheds_under_overload(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4,
        )
        online = attach_arrivals(base_trace, PoissonProcess(2000.0), seed=3)
        result = Fleet.homogeneous(
            server, 2, routing="jsq",
            admission=LoadSheddingPolicy(max_wait_s=1e-3),
        ).serve(online)
        assert result.fleet.shed > 0
        assert result.fleet.conserved
        assert np.array_equal(
            result.assignments == -2,
            np.array([r.shed for r in result.fleet.records]),
        )
        # Shed requests count against the drop rate, so SLO math stays honest.
        assert result.fleet.drop_rate == pytest.approx(
            (result.fleet.rejected + result.fleet.shed) / result.offered
        )

    def test_load_shedding_validation(self):
        with pytest.raises(ValueError):
            LoadSheddingPolicy(max_wait_s=0.0)

    def test_tenant_quota_caps_each_tenant(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4,
        )
        online = attach_arrivals(base_trace, PoissonProcess(2000.0), seed=3)
        result = Fleet.homogeneous(
            server, 2, routing="jsq",
            admission=TenantQuotaPolicy(tenants=4, quota=2),
        ).serve(online)
        assert result.fleet.shed > 0
        assert result.fleet.conserved
        # Fairness: the quota leaves every tenant with completed work.
        cols = result.fleet.records.columns()
        completed = cols["finish"] >= 0.0
        tenants = np.arange(result.offered) % 4
        for tenant in range(4):
            assert np.count_nonzero(completed[tenants == tenant]) > 0

    def test_tenant_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuotaPolicy(tenants=0, quota=1)
        with pytest.raises(ValueError):
            TenantQuotaPolicy(tenants=2, quota=0)

    def test_priority_evicts_and_preempts_low_priority(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4, max_queue=8,
        )
        online = attach_arrivals(base_trace, PoissonProcess(2000.0), seed=3)
        policy = PriorityAdmissionPolicy(levels=2, max_preemptions=4)
        result = Fleet.homogeneous(
            server, 2, routing="jsq", admission=policy
        ).serve(online)
        assert policy.evictions + policy.preemptions > 0
        assert result.fleet.conserved
        # Evicted-from-queue ids are the shed records; preemptions show up
        # in the preempted counts (a preempted decode still completes).
        assert result.fleet.shed == policy.evictions
        assert result.fleet.preempted == policy.preemptions
        if policy.evictions:
            # Only low-priority (odd id) work is ever evicted.
            shed_ids = np.flatnonzero(
                np.array([r.shed for r in result.fleet.records])
            )
            assert bool(np.all(shed_ids % 2 == 1))

    def test_priority_validation(self):
        with pytest.raises(ValueError):
            PriorityAdmissionPolicy(levels=1)

    def test_eviction_counts_surface_per_replica(
        self, tiny_profile, short_input_dist, short_output_dist,
        tiny_simulator, base_trace,
    ):
        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist,
            tiny_simulator, batch_size=4, max_queue=8,
        )
        online = attach_arrivals(base_trace, PoissonProcess(2000.0), seed=3)
        policy = PriorityAdmissionPolicy(levels=2, max_preemptions=4)
        fleet = Fleet.homogeneous(server, 2, routing="jsq", admission=policy)
        fleet.serve(online)
        # The per-replica eviction counters the convergence diagnostics
        # report must reconcile with the policy's own total.
        assert int(fleet._evicted.sum()) == policy.evictions


# ---------------------------------------------------------------------------
# The batched chaos path: bit parity against the per-id fallback
# ---------------------------------------------------------------------------


def _policy(name):
    if name == "none":
        return None
    if name == "accept_all":
        return AcceptAll()
    if name == "shed_tight":
        return LoadSheddingPolicy(max_wait_s=1e-3)
    if name == "shed_mid":
        return LoadSheddingPolicy(max_wait_s=0.05)
    if name == "shed_loose":
        return LoadSheddingPolicy(max_wait_s=1e6)
    if name == "tenant_quota":
        return TenantQuotaPolicy(tenants=3, quota=2)
    return PriorityAdmissionPolicy(levels=2, max_preemptions=3)


class TestBatchedChaosParity:
    """`admit_batch` on == per-id fallback == stepped core, bit for bit.

    The property the whole batched chaos path hangs on: for every shipped
    admission policy x routing policy x both cores, under random seeded
    fault schedules and offered rates from idle to overload, the batched
    window path (`batched_admission=True`, the default) must reproduce
    the per-id fallback's records AND assignments exactly -- and both
    must match the stepped reference core, which never batches anything.
    """

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        kind=st.sampled_from(["orca", "rra"]),
        routing=st.sampled_from(["rr", "jsq", "low"]),
        policy_name=st.sampled_from([
            "none", "accept_all", "shed_tight", "shed_mid", "shed_loose",
            "tenant_quota", "priority",
        ]),
        rate=st.sampled_from([40.0, 300.0, 2000.0]),
        fault_seed=st.integers(min_value=0, max_value=10**6),
        with_faults=st.booleans(),
    )
    def test_batched_equals_fallback_equals_stepped(
        self, kind, routing, policy_name, rate, fault_seed, with_faults,
        tiny_profile, short_input_dist, short_output_dist, tiny_simulator,
        base_trace,
    ):
        online = attach_arrivals(base_trace, PoissonProcess(rate), seed=5)
        horizon = 2.0 * len(base_trace) / rate + 0.5
        faults = (
            FaultSchedule.flap(
                3, mtbf_s=horizon / 4.0, mttr_s=horizon / 12.0,
                horizon_s=horizon, seed=fault_seed, warmup_s=horizon / 50.0,
            )
            if with_faults else None
        )

        def run(batched, core):
            server = _server(
                kind, tiny_profile, short_input_dist, short_output_dist,
                tiny_simulator, batch_size=4, max_queue=16,
            )
            policy = _policy(policy_name)
            result = Fleet.homogeneous(
                server, 3, routing=routing, admission=policy, faults=faults,
                batched_admission=batched,
            ).serve(online, core=core)
            return result, policy

        batched, batched_policy = run(True, "event")
        fallback, fallback_policy = run(False, "event")
        stepped, stepped_policy = run(True, "stepped")
        for other in (fallback, stepped):
            assert batched.fleet.records == other.fleet.records
            assert np.array_equal(batched.assignments, other.assignments)
            if faults is not None:
                assert batched.requeued.tolist() == other.requeued.tolist()
        if policy_name == "priority":
            for other in (fallback_policy, stepped_policy):
                assert batched_policy.evictions == other.evictions
                assert batched_policy.preemptions == other.preemptions


# ---------------------------------------------------------------------------
# Loop wiring: diagnostics and guards
# ---------------------------------------------------------------------------


class TestLoopWiring:
    def _loop(self, server, pool, plane, **kwargs):
        server.reset(Timeline(), pool)
        return ServingLoop(
            pool,
            [server],
            route=lambda rid, clock: True,
            on_reject=lambda rid: None,
            faults=plane,
            **kwargs,
        )

    def test_downtime_without_crash_handler_is_an_error(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace,
    ):
        from repro.engine.pool import RequestPool

        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist, None
        )
        pool = RequestPool.from_trace(
            attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        )
        plane = FaultPlane(FaultSchedule(events=(FaultEvent(0, 1.0, 2.0),)), 1)
        with pytest.raises(ValueError, match="on_crash"):
            self._loop(server, pool, plane)

    def test_convergence_error_carries_fault_state(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace,
    ):
        from repro.engine.pool import RequestPool

        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist, None
        )
        pool = RequestPool.from_trace(
            attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        )
        plane = FaultPlane(FaultSchedule(), 1)
        loop = self._loop(server, pool, plane)
        message = str(loop._convergence_error(1.0, 0, len(pool)))
        assert "fault states=['up']" in message
        assert "crashes=[0]" in message
        assert "requeued=[0]" in message
        assert "slowdowns=" in message
        assert "next fault transition=inf" in message

        plain = ServingLoop(
            pool, [server], route=lambda rid, clock: True,
            on_reject=lambda rid: None,
        )
        assert "fault states" not in str(plain._convergence_error(1.0, 0, 1))

    def test_convergence_error_appends_diagnostics(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace,
    ):
        from repro.engine.pool import RequestPool

        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist, None
        )
        pool = RequestPool.from_trace(
            attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        )
        plane = FaultPlane(FaultSchedule(), 1)
        loop = self._loop(
            server, pool, plane,
            diagnostics=lambda: "per-replica admitted=[7], shed=3",
        )
        assert "per-replica admitted=[7], shed=3" in str(
            loop._convergence_error(1.0, 0, len(pool))
        )

    def test_mark_shed_batch_matches_per_id(
        self, short_input_dist, short_output_dist, base_trace,
    ):
        from repro.engine.pool import RequestPool
        from repro.serving.online import RecordColumns

        pool = RequestPool.from_trace(
            attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        )
        batched = RecordColumns(pool)
        batched.mark_shed_batch(np.array([1, 5, 9], dtype=np.int64))
        per_id = RecordColumns(pool)
        for rid in (1, 5, 9):
            per_id.mark_shed(rid)
        assert np.array_equal(batched.shed, per_id.shed)
        assert batched.shed.sum() == 3

    def test_drain_queue(
        self, tiny_profile, short_input_dist, short_output_dist, base_trace,
    ):
        from repro.engine.pool import RequestPool

        server = _server(
            "orca", tiny_profile, short_input_dist, short_output_dist, None
        )
        pool = RequestPool.from_trace(
            attach_arrivals(base_trace, PoissonProcess(30.0), seed=5)
        )
        server.reset(Timeline(), pool)
        for rid in (3, 1, 4):
            assert server.enqueue(rid)
        drained = server.drain_queue()
        assert drained.tolist() == [3, 1, 4]
        assert drained.dtype == np.int64
        assert server.queue_depth == 0
        assert server.drain_queue().size == 0


# ---------------------------------------------------------------------------
# Chaos scenario registry
# ---------------------------------------------------------------------------


class TestChaosScenarios:
    def test_known_chaos_scenarios(self):
        names = known_chaos_scenarios()
        assert set(names) == {"replica_flap", "straggler", "flash_crowd_shed"}

    def test_replica_flap_scenario(self):
        scenario = make_chaos_scenario("replica_flap", 20.0, 4, seed=1)
        assert isinstance(scenario, ChaosScenario)
        assert isinstance(scenario.faults, FaultSchedule)
        assert scenario.faults.events
        assert scenario.admission is None

    def test_straggler_scenario(self):
        scenario = make_chaos_scenario("straggler", 20.0, 4, slowdown=6.0)
        assert scenario.faults.slowdown_for(0) == 6.0
        assert scenario.faults.slowdown_for(1) == 1.0
        assert not scenario.faults.events

    def test_flash_crowd_shed_scenario(self):
        scenario = make_chaos_scenario("flash_crowd_shed", 20.0, 4)
        assert isinstance(scenario.admission, LoadSheddingPolicy)
        assert scenario.faults is None

    def test_unknown_scenario_and_bad_replicas(self):
        with pytest.raises(KeyError):
            make_chaos_scenario("nope", 20.0, 4)
        with pytest.raises(ValueError):
            make_chaos_scenario("replica_flap", 20.0, 0)

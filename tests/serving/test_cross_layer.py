"""Cross-layer parity: online drivers vs the offline runner.

Both sides construct iterations through the shared
:class:`~repro.engine.execution.ExecutionEngine`, so for the *same
iteration inputs* -- identical admission batches, pool membership and
per-request lengths -- the online drivers must produce exactly the stage
durations the offline runner produces.  These tests arrange a workload
where the two admission policies provably coincide (uniform request
lengths at the distribution mean, everything arrived at t=0, trace smaller
than the standing decode-batch target, so both admit the whole trace in
cycle 0) and compare the emitted task graphs value-for-value.
"""

from __future__ import annotations

import pytest

from repro.baselines.orca import Orca
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.runner import XRunner
from repro.serving.online import ContinuousBatchingOnlineServer, ExeGPTOnlineServer
from repro.workloads.trace import RequestSpec, WorkloadTrace


def _uniform_trace(simulator, n=12, input_len=48, output_len=16):
    specs = [RequestSpec(i, input_len, output_len, 0.0) for i in range(n)]
    return WorkloadTrace(
        name="uniform",
        requests=tuple(specs),
        input_distribution=simulator.input_distribution,
        output_distribution=simulator.output_distribution,
    )


def _task_signature(timeline):
    """(stage, tag, duration) sequence of a timeline's task graph."""
    return [(t.stage, t.tag, t.duration_s) for t in timeline.tasks]


@pytest.mark.parametrize(
    "config",
    [
        ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=4),
        ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2),
    ],
    ids=["rra", "waa"],
)
def test_online_driver_matches_offline_runner_durations(tiny_simulator, config):
    trace = _uniform_trace(tiny_simulator)

    runner = XRunner(tiny_simulator, config)
    offline_result = runner.run(trace)

    server = ExeGPTOnlineServer(tiny_simulator, config)
    online_result = server.serve(trace)
    assert online_result.completed == len(trace)

    # Identical iteration inputs must yield the identical task graph --
    # same stages, same tags, same durations, task for task.
    assert _task_signature(server._timeline) == _task_signature(
        runner.last_timeline
    )

    # With every arrival at t=0 the release times never bind, so even the
    # scheduled timelines coincide.
    assert online_result.makespan_s == offline_result.makespan_s
    online_finishes = sorted(r.finish_s for r in online_result.records)
    offline_finishes = sorted(offline_result.completion_times_s)
    assert online_finishes == offline_finishes


def test_continuous_batching_online_matches_offline_orca(
    tiny_profile, short_input_dist, short_output_dist, tiny_simulator
):
    """The ORCA online driver replays the offline policy task for task.

    With all arrivals at t=0 and an ample queue, the online admission
    (prefill-per-iteration, KV reservations) sees exactly the offline
    admission's state, so the two iteration streams -- and their batched
    stage durations -- must be identical.
    """
    trace = _uniform_trace(tiny_simulator)

    offline_system = Orca(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )
    offline = offline_system.run(trace, batch_size=8)

    online_system = Orca(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )
    server = ContinuousBatchingOnlineServer(system=online_system, batch_size=8)
    online = server.serve(trace)

    assert online.completed == len(trace)
    # The engine records per-iteration stage durations identically on both
    # sides (same bucketing, same order, same values).
    assert tuple(server._engine.stage_times["decode"]) == offline.stage_times["decode"]
    assert tuple(server._engine.stage_times["encode"]) == offline.stage_times["encode"]

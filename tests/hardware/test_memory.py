"""Tests for the per-GPU memory budget."""

import pytest

from repro.hardware.gpu import A40
from repro.hardware.memory import GIB, MemoryBudget, OutOfMemoryError


@pytest.fixture
def budget() -> MemoryBudget:
    return MemoryBudget(gpu=A40)


class TestMemoryBudget:
    def test_capacity_reserves_framework_memory(self, budget):
        assert budget.capacity_bytes < A40.memory_bytes
        assert budget.capacity_bytes == pytest.approx(A40.memory_bytes * 0.92)

    def test_allocate_and_release(self, budget):
        budget.allocate("weights", 10 * GIB)
        budget.allocate("kv_cache", 5 * GIB)
        assert budget.used_bytes == pytest.approx(15 * GIB)
        budget.release("kv_cache", 5 * GIB)
        assert budget.kv_cache_bytes == 0.0

    def test_over_allocation_raises(self, budget):
        with pytest.raises(OutOfMemoryError):
            budget.allocate("weights", 100 * GIB)

    def test_unknown_category_rejected(self, budget):
        with pytest.raises(ValueError):
            budget.allocate("scratch", 1.0)

    def test_negative_allocation_rejected(self, budget):
        with pytest.raises(ValueError):
            budget.allocate("weights", -1.0)

    def test_release_below_zero_rejected(self, budget):
        with pytest.raises(ValueError):
            budget.release("weights", 1 * GIB)

    def test_fits_probe(self, budget):
        assert budget.fits(10 * GIB)
        assert not budget.fits(100 * GIB)

    def test_snapshot_accounts_all_categories(self, budget):
        budget.allocate("weights", 8 * GIB)
        budget.allocate("activation", 2 * GIB)
        snap = budget.snapshot_gib()
        assert snap["weights"] == pytest.approx(8.0)
        assert snap["activation"] == pytest.approx(2.0)
        assert snap["free"] + snap["weights"] + snap["activation"] + snap["kv_cache"] == pytest.approx(snap["capacity"])

    def test_invalid_reserved_fraction(self):
        with pytest.raises(ValueError):
            MemoryBudget(gpu=A40, reserved_fraction=1.5)

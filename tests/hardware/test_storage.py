"""Tests for the model-loading (deployment) cost model."""

import pytest

from repro.hardware.storage import DRAM, SSD, StorageSpec, load_time_s
from repro.models.catalog import GPT3_39B, GPT3_341B


class TestLoadTime:
    def test_dram_faster_than_ssd(self):
        size = GPT3_39B.total_bytes
        assert load_time_s(size, 16, DRAM) < load_time_s(size, 16, SSD)

    def test_larger_model_takes_longer(self):
        assert load_time_s(GPT3_341B.total_bytes, 48, SSD) > load_time_s(
            GPT3_39B.total_bytes, 48, SSD
        )

    def test_more_gpus_load_faster(self):
        size = GPT3_341B.total_bytes
        assert load_time_s(size, 48, SSD) < load_time_s(size, 8, SSD)

    def test_replication_increases_time(self):
        size = GPT3_39B.total_bytes
        assert load_time_s(size, 16, DRAM, replication_factor=2.0) > load_time_s(
            size, 16, DRAM
        )

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            load_time_s(-1, 4, SSD)
        with pytest.raises(ValueError):
            load_time_s(1e9, 0, SSD)
        with pytest.raises(ValueError):
            load_time_s(1e9, 4, SSD, replication_factor=0.5)
        with pytest.raises(ValueError):
            StorageSpec(name="bad", per_gpu_bandwidth_gbps=0, setup_s=0)

    def test_table4_magnitudes(self):
        """Redeploying from DRAM stays within a few seconds (Table 4)."""
        dram = load_time_s(GPT3_341B.total_bytes, 48, DRAM)
        ssd = load_time_s(GPT3_341B.total_bytes, 48, SSD)
        assert 1.0 < dram < 8.0
        assert 5.0 < ssd < 30.0

"""Tests for GPU device specs and the device registry."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.gpu import A40, A100, GPUSpec, get_gpu, known_gpus, register_gpu


class TestGPUSpec:
    def test_peak_flops_conversion(self):
        assert A100.peak_flops == pytest.approx(312.0e12)

    def test_memory_bytes_conversion(self):
        assert A40.memory_bytes == pytest.approx(48 * 1024 ** 3)

    def test_bandwidth_conversion(self):
        assert A100.memory_bandwidth_bytes_per_s == pytest.approx(2039e9)

    def test_a100_is_faster_than_a40(self):
        assert A100.peak_fp16_tflops > A40.peak_fp16_tflops
        assert A100.memory_bandwidth_gbps > A40.memory_bandwidth_gbps
        assert A100.memory_gb > A40.memory_gb

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", peak_fp16_tflops=0, memory_gb=1, memory_bandwidth_gbps=1)
        with pytest.raises(ValueError):
            GPUSpec(name="bad", peak_fp16_tflops=1, memory_gb=-1, memory_bandwidth_gbps=1)
        with pytest.raises(ValueError):
            GPUSpec(
                name="bad",
                peak_fp16_tflops=1,
                memory_gb=1,
                memory_bandwidth_gbps=1,
                max_efficiency=1.5,
            )

    def test_efficiency_zero_at_zero_tokens(self):
        assert A40.efficiency(0) == 0.0

    def test_efficiency_bounded_by_max(self):
        assert A40.efficiency(10 ** 9) <= A40.max_efficiency

    @given(st.floats(min_value=1, max_value=1e6), st.floats(min_value=1, max_value=1e6))
    def test_efficiency_monotonic_in_tokens(self, a, b):
        lo, hi = sorted((a, b))
        assert A100.efficiency(lo) <= A100.efficiency(hi) + 1e-12


class TestRegistry:
    def test_lookup_by_alias(self):
        assert get_gpu("a40") is A40
        assert get_gpu("A100-80GB") is A100

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_known_gpus_lists_both(self):
        names = known_gpus()
        assert "A40-48GB" in names and "A100-80GB" in names

    def test_register_custom_gpu(self):
        custom = GPUSpec(
            name="Test-GPU", peak_fp16_tflops=100, memory_gb=24, memory_bandwidth_gbps=900
        )
        register_gpu("TEST-GPU", custom)
        assert get_gpu("test-gpu") is custom

"""Tests for cluster topology and sub-cluster derivation."""

import pytest

from repro.hardware.cluster import Cluster, a40_cluster, a100_cluster
from repro.hardware.gpu import get_gpu
from repro.hardware.interconnect import A40_TOPOLOGY


class TestPaperClusters:
    def test_a40_cluster_matches_table2(self):
        cluster = a40_cluster()
        assert cluster.num_gpus == 48
        assert cluster.gpus_per_node == 8
        assert cluster.num_nodes == 6
        assert cluster.gpu.memory_gb == 48.0

    def test_a100_cluster_matches_table2(self):
        cluster = a100_cluster()
        assert cluster.num_gpus == 16
        assert cluster.num_nodes == 2
        assert cluster.gpu.memory_gb == 80.0

    def test_subcluster_sizes(self):
        assert a40_cluster(4).num_gpus == 4
        assert a40_cluster(16).num_gpus == 16
        assert a100_cluster(16).num_gpus == 16


class TestPlacementQueries:
    def test_node_of_and_same_node(self):
        cluster = a40_cluster()
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.same_node(0, 7)
        assert not cluster.same_node(7, 8)

    def test_group_spans_nodes(self):
        cluster = a40_cluster()
        assert not cluster.group_spans_nodes([0, 1, 2, 3])
        assert cluster.group_spans_nodes([6, 7, 8])
        assert not cluster.group_spans_nodes([])

    def test_index_bounds_checked(self):
        cluster = a40_cluster(4)
        with pytest.raises(IndexError):
            cluster.node_of(4)

    def test_subcluster_invalid_size(self):
        with pytest.raises(ValueError):
            a40_cluster().subcluster(0)
        with pytest.raises(ValueError):
            a40_cluster().subcluster(100)

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(gpu=get_gpu("A40"), gpus_per_node=0, num_nodes=1, topology=A40_TOPOLOGY)

"""Tests for collective-communication cost models."""

import pytest

from repro.hardware.cluster import a40_cluster, a100_cluster
from repro.hardware.collectives import CollectiveModel


@pytest.fixture(scope="module")
def a40_model() -> CollectiveModel:
    return CollectiveModel(a40_cluster(8))


@pytest.fixture(scope="module")
def a100_model() -> CollectiveModel:
    return CollectiveModel(a100_cluster(8))


class TestAllReduce:
    def test_single_gpu_is_free(self, a40_model):
        assert a40_model.allreduce_time(1e9, group_size=1) == 0.0

    def test_zero_bytes_is_free(self, a40_model):
        assert a40_model.allreduce_time(0, group_size=4) == 0.0

    def test_cost_grows_with_bytes(self, a40_model):
        assert a40_model.allreduce_time(2e8, 4) > a40_model.allreduce_time(1e8, 4)

    def test_cost_grows_with_group_size(self, a40_model):
        assert a40_model.allreduce_time(1e8, 8) > a40_model.allreduce_time(1e8, 2)

    def test_nvlink_cheaper_than_pcie(self, a40_model, a100_model):
        assert a100_model.allreduce_time(1e8, 8) < a40_model.allreduce_time(1e8, 8)

    def test_cross_node_more_expensive(self, a40_model):
        intra = a40_model.allreduce_time(1e8, 8, spans_nodes=False)
        inter = a40_model.allreduce_time(1e8, 8, spans_nodes=True)
        assert inter > intra

    def test_invalid_args_rejected(self, a40_model):
        with pytest.raises(ValueError):
            a40_model.allreduce_time(1e6, 0)
        with pytest.raises(ValueError):
            a40_model.allreduce_time(-1, 2)


class TestPointToPoint:
    def test_same_node_cheaper(self, a40_model):
        assert a40_model.p2p_time(1e8, same_node=True) < a40_model.p2p_time(1e8, same_node=False)

    def test_pipeline_activation_uses_topology(self, a40_model):
        intra = a40_model.pipeline_activation_time(1e7, 0, 1)
        inter = a40_model.pipeline_activation_time(1e7, 7, 8) if a40_model.cluster.num_gpus > 8 else None
        assert intra > 0

    def test_staged_host_transfer_pays_two_hops(self, a40_model):
        single = a40_model.cluster.topology.host.transfer_time(1e8)
        staged = a40_model.staged_host_transfer_time(1e8)
        assert staged == pytest.approx(2 * single)

"""Tests for interconnect link models and topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.interconnect import (
    A40_TOPOLOGY,
    A100_TOPOLOGY,
    INFINIBAND_100G,
    LinkSpec,
    NVLINK3,
    PCIE4_X16,
    get_link,
)


class TestLinkSpec:
    def test_zero_bytes_costs_nothing(self):
        assert NVLINK3.transfer_time(0) == 0.0

    def test_transfer_time_includes_latency(self):
        tiny = PCIE4_X16.transfer_time(1)
        assert tiny >= PCIE4_X16.latency_us * 1e-6

    def test_nvlink_faster_than_pcie(self):
        payload = 100e6
        assert NVLINK3.transfer_time(payload) < PCIE4_X16.transfer_time(payload)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVLINK3.transfer_time(-1)

    def test_invalid_link_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth_gbps=0, latency_us=1)

    @given(st.floats(min_value=0, max_value=1e12), st.floats(min_value=0, max_value=1e12))
    def test_transfer_time_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert NVLINK3.transfer_time(lo) <= NVLINK3.transfer_time(hi) + 1e-12


class TestTopology:
    def test_registry_lookup(self):
        assert get_link("nvlink") is NVLINK3
        with pytest.raises(KeyError):
            get_link("token-ring")

    def test_a40_uses_pcie_intra_node(self):
        assert A40_TOPOLOGY.intra_node is PCIE4_X16
        assert A40_TOPOLOGY.inter_node is INFINIBAND_100G

    def test_a100_intra_node_faster_than_a40(self):
        payload = 10e6
        assert A100_TOPOLOGY.intra_node.transfer_time(payload) < A40_TOPOLOGY.intra_node.transfer_time(payload)

    def test_link_between_selects_by_locality(self):
        assert A40_TOPOLOGY.link_between(same_node=True) is PCIE4_X16
        assert A40_TOPOLOGY.link_between(same_node=False) is INFINIBAND_100G

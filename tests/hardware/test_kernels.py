"""Tests for the roofline kernel cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.gpu import A40, A100
from repro.hardware.kernels import KernelCost, KernelModel, ZERO_COST


@pytest.fixture(scope="module")
def model() -> KernelModel:
    return KernelModel(A100)


class TestKernelCost:
    def test_total_is_roofline_plus_launch(self):
        cost = KernelCost(compute_s=2.0, memory_s=1.0, launch_s=0.5)
        assert cost.total_s == pytest.approx(2.5)

    def test_addition(self):
        total = KernelCost(1, 2, 3) + KernelCost(4, 5, 6)
        assert (total.compute_s, total.memory_s, total.launch_s) == (5, 7, 9)


class TestGemm:
    def test_zero_dims_cost_nothing(self, model):
        assert model.gemm(0, 128, 128) is ZERO_COST

    def test_negative_dims_rejected(self, model):
        with pytest.raises(ValueError):
            model.gemm(-1, 2, 3)

    def test_large_gemm_is_compute_bound(self, model):
        cost = model.gemm(4096, 4096, 4096)
        assert cost.compute_s > cost.memory_s

    def test_small_gemm_runs_far_below_peak(self, model):
        """Single-row GEMMs (decode) achieve a tiny fraction of the effective
        FLOP rate of large GEMMs (prefill) -- the asymmetry ExeGPT exploits."""
        flops = lambda m: 2.0 * m * 8192 * 8192
        small_rate = flops(1) / model.gemm(1, 8192, 8192).total_s
        large_rate = flops(4096) / model.gemm(4096, 8192, 8192).total_s
        assert large_rate > 20 * small_rate

    def test_faster_gpu_is_faster(self):
        a40 = KernelModel(A40).gemm(1024, 4096, 4096)
        a100 = KernelModel(A100).gemm(1024, 4096, 4096)
        assert a100.total_s < a40.total_s

    @given(
        m=st.integers(min_value=1, max_value=4096),
        scale=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_cost_monotonic_in_m(self, model, m, scale):
        small = model.gemm(m, 1024, 1024).total_s
        large = model.gemm(m * scale, 1024, 1024).total_s
        assert large >= small - 1e-12


class TestAttention:
    def test_decode_attention_is_memory_bound(self, model):
        cost = model.attention(batch=8, query_len=1, key_len=512, num_heads=32, head_dim=128)
        assert cost.memory_s > cost.compute_s

    def test_prefill_more_expensive_than_decode_step(self, model):
        prefill = model.attention(8, 512, 512, 32, 128).total_s
        decode = model.attention(8, 1, 512, 32, 128).total_s
        assert prefill > decode

    def test_cost_grows_with_context(self, model):
        short = model.attention(8, 1, 128, 32, 128).total_s
        long = model.attention(8, 1, 2048, 32, 128).total_s
        assert long > short


class TestLayerCosts:
    def test_tensor_parallel_reduces_dense_cost(self, model):
        single = model.dense_layer_cost(1024, 4096, 16384, tp_degree=1).total_s
        split = model.dense_layer_cost(1024, 4096, 16384, tp_degree=4).total_s
        assert split < single

    def test_cross_attention_adds_cost(self, model):
        without = model.dense_layer_cost(1024, 4096, 16384).total_s
        with_cross = model.dense_layer_cost(1024, 4096, 16384, has_cross_attention=True).total_s
        assert with_cross > without

    def test_attention_layer_cross_term(self, model):
        plain = model.attention_layer_cost(8, 1, 256, 32, 128).total_s
        cross = model.attention_layer_cost(8, 1, 256, 32, 128, cross_key_len=256).total_s
        assert cross > plain

    def test_invalid_tp_rejected(self, model):
        with pytest.raises(ValueError):
            model.dense_layer_cost(16, 512, 2048, tp_degree=0)

    def test_memcpy_scales_with_bytes(self, model):
        assert model.memcpy(2e9).total_s > model.memcpy(1e9).total_s
        assert model.memcpy(0) is ZERO_COST

    def test_encode_orders_of_magnitude_above_decode_step(self, model):
        """The paper's premise: input encoding cost >> one decoding step."""
        encode = model.dense_layer_cost(64 * 256, 5120, 20480).total_s
        decode = model.dense_layer_cost(64, 5120, 20480).total_s
        assert encode > 20 * decode

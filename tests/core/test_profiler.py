"""Tests for XProfiler and the profile table."""

import pytest

from repro.core.profiler import MeasurementGrid, XProfiler
import numpy as np


class TestMeasurementGrid:
    def test_exact_lookup(self):
        grid = MeasurementGrid(
            rows=np.array([1.0, 2.0]), cols=np.array([1.0, 4.0]),
            values=np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        assert grid.lookup(1, 1) == pytest.approx(1.0)
        assert grid.lookup(2, 4) == pytest.approx(4.0)

    def test_bilinear_interpolation(self):
        grid = MeasurementGrid(
            rows=np.array([0.0, 2.0]), cols=np.array([0.0, 2.0]),
            values=np.array([[0.0, 2.0], [2.0, 4.0]]),
        )
        assert grid.lookup(1, 1) == pytest.approx(2.0)

    def test_clamping_outside_grid(self):
        grid = MeasurementGrid(
            rows=np.array([1.0, 2.0]), cols=np.array([1.0, 2.0]),
            values=np.array([[1.0, 1.0], [1.0, 5.0]]),
        )
        assert grid.lookup(100, 100) == pytest.approx(5.0)
        assert grid.lookup(0, 0) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeasurementGrid(np.array([1.0]), np.array([1.0, 2.0]), np.array([[1.0]]))


class TestXProfiler:
    def test_feasible_tp_degrees_are_powers_of_two(self, tiny_model, tiny_cluster):
        profiler = XProfiler(tiny_model, tiny_cluster)
        degrees = profiler.feasible_tp_degrees()
        assert degrees[0] == 1
        assert all(b == 2 * a for a, b in zip(degrees, degrees[1:]))
        assert max(degrees) <= tiny_cluster.gpus_per_node

    def test_profile_contains_all_degrees(self, tiny_profile):
        assert set(tiny_profile.encode_grids) == set(tiny_profile.tp_degrees)
        assert set(tiny_profile.decode_grids) == set(tiny_profile.tp_degrees)

    def test_encode_layer_time_positive_and_monotone_in_batch(self, tiny_profile):
        t_small = tiny_profile.encode_layer_time(1, 2, 64)
        t_large = tiny_profile.encode_layer_time(1, 32, 64)
        assert 0 < t_small < t_large

    def test_decode_layer_time_monotone_in_context(self, tiny_profile):
        short = tiny_profile.decode_layer_time(1, 16, 32)
        long = tiny_profile.decode_layer_time(1, 16, 512)
        assert long >= short

    def test_tensor_parallelism_speeds_up_layers(self, tiny_profile):
        single = tiny_profile.encode_layer_time(1, 16, 128)
        split = tiny_profile.encode_layer_time(2, 16, 128)
        assert split < single

    def test_encode_step_costs_more_than_decode_step(self, tiny_profile):
        """The paper's premise: prefill over a full input costs far more than
        one incremental decode step for the same batch."""
        encode = tiny_profile.encode_layer_time(1, 64, 256)
        decode = tiny_profile.decode_layer_time(1, 64, 256)
        assert encode > 5 * decode

    def test_unknown_tp_degree_raises(self, tiny_profile):
        with pytest.raises(KeyError):
            tiny_profile.encode_layer_time(64, 8, 128)

    def test_zero_batch_costs_nothing(self, tiny_profile):
        assert tiny_profile.encode_layer_time(1, 0, 64) == 0.0
        assert tiny_profile.decode_layer_time(1, 0, 64) == 0.0

    def test_sync_times(self, tiny_profile):
        assert tiny_profile.encode_sync_time(1, 8, 64, False) == 0.0
        intra = tiny_profile.decode_sync_time(2, 8, False)
        inter = tiny_profile.decode_sync_time(2, 8, True)
        assert 0 < intra < inter

    def test_kv_transfer_and_compaction_positive(self, tiny_profile):
        assert tiny_profile.kv_transfer_time(4, 64, 8) > 0
        assert tiny_profile.kv_compaction_time(4, 64, 8) > 0
        assert tiny_profile.kv_transfer_time(0, 64, 8) == 0.0

    def test_activation_transfer_uses_topology(self, tiny_profile):
        same = tiny_profile.activation_transfer_time(8, 64, 0, 1)
        assert same > 0

    def test_invalid_profiler_args(self, tiny_model, tiny_cluster):
        with pytest.raises(ValueError):
            XProfiler(tiny_model, tiny_cluster, max_batch=0)

"""Tests for XProfiler and the profile table."""

import pytest

from repro.core.profiler import MeasurementGrid, XProfiler
import numpy as np


class TestMeasurementGrid:
    def test_exact_lookup(self):
        grid = MeasurementGrid(
            rows=np.array([1.0, 2.0]), cols=np.array([1.0, 4.0]),
            values=np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        assert grid.lookup(1, 1) == pytest.approx(1.0)
        assert grid.lookup(2, 4) == pytest.approx(4.0)

    def test_bilinear_interpolation(self):
        grid = MeasurementGrid(
            rows=np.array([0.0, 2.0]), cols=np.array([0.0, 2.0]),
            values=np.array([[0.0, 2.0], [2.0, 4.0]]),
        )
        assert grid.lookup(1, 1) == pytest.approx(2.0)

    def test_clamping_outside_grid(self):
        grid = MeasurementGrid(
            rows=np.array([1.0, 2.0]), cols=np.array([1.0, 2.0]),
            values=np.array([[1.0, 1.0], [1.0, 5.0]]),
        )
        assert grid.lookup(100, 100) == pytest.approx(5.0)
        assert grid.lookup(0, 0) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeasurementGrid(np.array([1.0]), np.array([1.0, 2.0]), np.array([[1.0]]))

    def test_lookup_batch_matches_scalar(self):
        rng = np.random.default_rng(7)
        rows = np.array([1.0, 2.0, 5.0, 13.0])
        cols = np.array([1.0, 8.0, 64.0])
        grid = MeasurementGrid(rows, cols, rng.uniform(size=(4, 3)))
        queries_r = rng.uniform(0.0, 20.0, size=200)
        queries_c = rng.uniform(0.0, 100.0, size=200)
        batch = grid.lookup_batch(queries_r, queries_c)
        for r, c, v in zip(queries_r, queries_c, batch):
            assert v == grid.lookup(r, c)  # bit-identical, not approx

    def test_lookup_batch_on_grid_points(self):
        grid = MeasurementGrid(
            rows=np.array([0.0, 2.0]), cols=np.array([0.0, 2.0]),
            values=np.array([[0.0, 2.0], [2.0, 4.0]]),
        )
        out = grid.lookup_batch(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 2.0]))
        assert out == pytest.approx([0.0, 2.0, 4.0])

    def test_lookup_batch_broadcasts_and_degenerate_grids(self):
        line = MeasurementGrid(
            rows=np.array([1.0]), cols=np.array([1.0, 3.0]),
            values=np.array([[1.0, 5.0]]),
        )
        out = line.lookup_batch(np.array([1.0, 1.0]), np.array([2.0, 3.0]))
        assert out == pytest.approx([3.0, 5.0])
        point = MeasurementGrid(
            rows=np.array([1.0]), cols=np.array([1.0]), values=np.array([[7.0]])
        )
        assert point.lookup_batch(np.array([0.0, 9.0]), 1.0) == pytest.approx([7.0, 7.0])


class TestXProfiler:
    def test_feasible_tp_degrees_are_powers_of_two(self, tiny_model, tiny_cluster):
        profiler = XProfiler(tiny_model, tiny_cluster)
        degrees = profiler.feasible_tp_degrees()
        assert degrees[0] == 1
        assert all(b == 2 * a for a, b in zip(degrees, degrees[1:]))
        assert max(degrees) <= tiny_cluster.gpus_per_node

    def test_profile_contains_all_degrees(self, tiny_profile):
        assert set(tiny_profile.encode_grids) == set(tiny_profile.tp_degrees)
        assert set(tiny_profile.decode_grids) == set(tiny_profile.tp_degrees)

    def test_encode_layer_time_positive_and_monotone_in_batch(self, tiny_profile):
        t_small = tiny_profile.encode_layer_time(1, 2, 64)
        t_large = tiny_profile.encode_layer_time(1, 32, 64)
        assert 0 < t_small < t_large

    def test_decode_layer_time_monotone_in_context(self, tiny_profile):
        short = tiny_profile.decode_layer_time(1, 16, 32)
        long = tiny_profile.decode_layer_time(1, 16, 512)
        assert long >= short

    def test_tensor_parallelism_speeds_up_layers(self, tiny_profile):
        single = tiny_profile.encode_layer_time(1, 16, 128)
        split = tiny_profile.encode_layer_time(2, 16, 128)
        assert split < single

    def test_encode_step_costs_more_than_decode_step(self, tiny_profile):
        """The paper's premise: prefill over a full input costs far more than
        one incremental decode step for the same batch."""
        encode = tiny_profile.encode_layer_time(1, 64, 256)
        decode = tiny_profile.decode_layer_time(1, 64, 256)
        assert encode > 5 * decode

    def test_unknown_tp_degree_raises(self, tiny_profile):
        with pytest.raises(KeyError):
            tiny_profile.encode_layer_time(64, 8, 128)

    def test_zero_batch_costs_nothing(self, tiny_profile):
        assert tiny_profile.encode_layer_time(1, 0, 64) == 0.0
        assert tiny_profile.decode_layer_time(1, 0, 64) == 0.0

    def test_sync_times(self, tiny_profile):
        assert tiny_profile.encode_sync_time(1, 8, 64, False) == 0.0
        intra = tiny_profile.decode_sync_time(2, 8, False)
        inter = tiny_profile.decode_sync_time(2, 8, True)
        assert 0 < intra < inter

    def test_kv_transfer_and_compaction_positive(self, tiny_profile):
        assert tiny_profile.kv_transfer_time(4, 64, 8) > 0
        assert tiny_profile.kv_compaction_time(4, 64, 8) > 0
        assert tiny_profile.kv_transfer_time(0, 64, 8) == 0.0

    def test_activation_transfer_uses_topology(self, tiny_profile):
        same = tiny_profile.activation_transfer_time(8, 64, 0, 1)
        assert same > 0

    def test_invalid_profiler_args(self, tiny_model, tiny_cluster):
        with pytest.raises(ValueError):
            XProfiler(tiny_model, tiny_cluster, max_batch=0)


class TestProfileTableBatch:
    """Array-valued profile lookups must match the scalar ones bit-for-bit."""

    def test_layer_times_match_scalar(self, tiny_profile):
        batches = np.array([0.0, 0.5, 1.0, 3.7, 16.0, 400.0])
        lengths = np.array([1.0, 7.0, 32.0, 700.0, 64.0, 0.0])
        for tp in tiny_profile.tp_degrees:
            enc = tiny_profile.encode_layer_time_batch(tp, batches, lengths)
            dec = tiny_profile.decode_layer_time_batch(tp, batches, lengths)
            for i, (b, length) in enumerate(zip(batches, lengths)):
                assert enc[i] == tiny_profile.encode_layer_time(tp, b, length)
                assert dec[i] == tiny_profile.decode_layer_time(tp, b, length)

    def test_sync_times_match_scalar(self, tiny_profile):
        batches = np.array([0.0, 1.0, 8.0, 100.0])
        lengths = np.array([64.0, 0.0, 32.0, 8.0])
        for tp in (1, 2):
            for spans in (False, True):
                enc = tiny_profile.encode_sync_time_batch(tp, batches, lengths, spans)
                dec = tiny_profile.decode_sync_time_batch(tp, batches, spans)
                for i, (b, length) in enumerate(zip(batches, lengths)):
                    assert enc[i] == tiny_profile.encode_sync_time(tp, b, length, spans)
                    assert dec[i] == tiny_profile.decode_sync_time(tp, b, spans)

    def test_kv_transfer_matches_scalar(self, tiny_profile):
        batches = np.array([0.0, 2.0, 64.0])
        tokens = np.array([16.0, 0.0, 48.0])
        for layers in (0, 1, 8):
            batch = tiny_profile.kv_transfer_time_batch(batches, tokens, layers)
            for i, (b, t) in enumerate(zip(batches, tokens)):
                assert batch[i] == tiny_profile.kv_transfer_time(b, t, layers)

"""Tests for the branch-and-bound scheduler (Algorithm 1)."""

import pytest

from repro.core.config import LatencyConstraint, SchedulePolicy, TensorParallelConfig
from repro.core.scheduler import (
    SearchSpace,
    XScheduler,
    _Evaluator,
    branch_and_bound,
    exhaustive_search,
    random_search,
)


@pytest.fixture(scope="module")
def scheduler(tiny_simulator) -> XScheduler:
    return XScheduler(tiny_simulator, max_encode_batch=24, max_decode_iterations=24)


def _rra_space(scheduler) -> SearchSpace:
    return [
        s
        for s in scheduler.search_spaces(policies=(SchedulePolicy.RRA,))
        if s.tensor_parallel.degree == 1
    ][0]


class TestSearchSpace:
    def test_rra_space_orientation(self, scheduler):
        space = _rra_space(scheduler)
        # Larger second index -> smaller N_D (more frequent encoding).
        assert space.second_values[0] > space.second_values[-1]
        assert space.second_values[-1] == 1
        config = space.config_at(4, len(space.second_values) - 1)
        assert config.decode_iterations == 1
        assert config.encode_batch == 4

    def test_waa_space_skipped_when_single_stage(self, tiny_simulator):
        scheduler = XScheduler(tiny_simulator, max_encode_batch=8)
        full_tp = TensorParallelConfig(degree=4, num_gpus=4)
        spaces = scheduler.search_spaces(
            policies=(SchedulePolicy.WAA_C,), tensor_parallel_options=[full_tp]
        )
        assert spaces == []

    def test_num_points(self, scheduler):
        space = _rra_space(scheduler)
        (lo, hi), _ = space.bounds
        assert space.num_points == (hi - lo + 1) * len(space.second_values)

    def test_tp_options_include_plain_and_grouped(self, scheduler):
        options = scheduler.tensor_parallel_options()
        degrees = {o.degree for o in options}
        assert 1 in degrees
        assert any(d > 1 for d in degrees)


class TestBranchAndBound:
    def test_unbounded_constraint_returns_top_corner_region(self, tiny_simulator, scheduler):
        space = _rra_space(scheduler)
        constraint = LatencyConstraint(bound_s=float("inf"))
        evaluator = _Evaluator(tiny_simulator, space, constraint)
        best = branch_and_bound(evaluator, constraint)
        assert best is not None
        # With no bound the best schedule uses a large encoder batch.
        assert best.config.encode_batch >= scheduler.max_encode_batch // 2

    def test_respects_latency_bound(self, tiny_simulator, scheduler):
        space = _rra_space(scheduler)
        unbounded = _Evaluator(tiny_simulator, space, LatencyConstraint(float("inf")))
        loose = branch_and_bound(unbounded, LatencyConstraint(float("inf")))
        bound = loose.latency_s * 0.5
        constraint = LatencyConstraint(bound_s=bound)
        evaluator = _Evaluator(tiny_simulator, space, constraint)
        best = branch_and_bound(evaluator, constraint)
        assert best is not None
        assert best.latency_s <= bound * 1.001

    def test_matches_exhaustive_within_tolerance(self, tiny_simulator):
        scheduler = XScheduler(tiny_simulator, max_encode_batch=12, max_decode_iterations=12)
        space = [
            s
            for s in scheduler.search_spaces(policies=(SchedulePolicy.RRA,))
            if s.tensor_parallel.degree == 1
        ][0]
        constraint = LatencyConstraint(bound_s=2.0)
        bnb_eval = _Evaluator(tiny_simulator, space, constraint)
        bnb = branch_and_bound(bnb_eval, constraint)
        exh_eval = _Evaluator(tiny_simulator, space, constraint)
        exhaustive = exhaustive_search(exh_eval, constraint)
        if exhaustive is None:
            assert bnb is None
        else:
            assert bnb is not None
            assert bnb.throughput_seq_per_s >= 0.9 * exhaustive.throughput_seq_per_s
            # And it must do so with far fewer evaluations.
            assert bnb_eval.evaluations < exh_eval.evaluations

    def test_random_search_finds_something(self, tiny_simulator, scheduler):
        space = _rra_space(scheduler)
        constraint = LatencyConstraint(bound_s=float("inf"))
        evaluator = _Evaluator(tiny_simulator, space, constraint)
        best = random_search(evaluator, constraint, num_samples=20)
        assert best is not None


class TestBatchedEvaluator:
    def test_exhaustive_batched_matches_scalar(self, tiny_simulator, scheduler):
        for space in scheduler.search_spaces()[:4]:
            constraint = LatencyConstraint(bound_s=2.0)
            batched_eval = _Evaluator(tiny_simulator, space, constraint, batched=True)
            scalar_eval = _Evaluator(tiny_simulator, space, constraint, batched=False)
            batched = exhaustive_search(batched_eval, constraint)
            scalar = exhaustive_search(scalar_eval, constraint)
            assert batched_eval.evaluations == scalar_eval.evaluations
            if scalar is None:
                assert batched is None
                continue
            assert batched is not None
            assert batched.config == scalar.config
            assert batched.throughput_seq_per_s == pytest.approx(
                scalar.throughput_seq_per_s, rel=1e-9
            )
            # Cached per-point verdicts agree point by point.
            for key, point in scalar_eval.cache.items():
                assert batched_eval.cache[key].feasible == point.feasible

    def test_perf_batch_deduplicates_and_caches(self, tiny_simulator, scheduler):
        space = _rra_space(scheduler)
        constraint = LatencyConstraint(bound_s=float("inf"))
        evaluator = _Evaluator(tiny_simulator, space, constraint)
        coords = [(1, 0), (2, 0), (1, 0), (2, 1)]
        points = evaluator.perf_batch(coords)
        assert len(points) == 4
        assert points[0] is points[2]
        assert evaluator.evaluations == 3
        again = evaluator.perf_batch(coords)
        assert evaluator.evaluations == 3
        assert again[1] is points[1]

    def test_branch_and_bound_batched_matches_scalar_result(
        self, tiny_simulator, scheduler
    ):
        constraint = LatencyConstraint(bound_s=2.0)
        batched = scheduler.schedule(constraint)
        scalar = scheduler.schedule(constraint, batched=False)
        assert batched.found == scalar.found
        if batched.found:
            assert batched.best.throughput_seq_per_s == pytest.approx(
                scalar.best.throughput_seq_per_s, rel=1e-6
            )


class TestXScheduler:
    def test_schedule_returns_feasible_result(self, scheduler):
        result = scheduler.schedule(LatencyConstraint(bound_s=float("inf")))
        assert result.found
        assert result.evaluations > 0
        assert result.space_size > result.evaluations
        assert result.best.feasible

    def test_throughput_increases_with_relaxed_bound(self, scheduler):
        tight_bound = scheduler.schedule(LatencyConstraint(float("inf"))).best.latency_s * 0.3
        tight = scheduler.schedule(LatencyConstraint(bound_s=max(tight_bound, 0.05)))
        relaxed = scheduler.schedule(LatencyConstraint(bound_s=float("inf")))
        if tight.found:
            assert relaxed.best.throughput_seq_per_s >= tight.best.throughput_seq_per_s * 0.99

    def test_impossible_bound_returns_not_found(self, scheduler):
        result = scheduler.schedule(LatencyConstraint(bound_s=1e-6))
        assert not result.found
        assert result.best is None

    def test_unknown_method_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule(LatencyConstraint(bound_s=1.0), method="simulated-annealing")

    def test_policy_restriction(self, scheduler):
        result = scheduler.schedule(
            LatencyConstraint(bound_s=float("inf")), policies=(SchedulePolicy.RRA,)
        )
        assert result.best.config.policy is SchedulePolicy.RRA

"""Tests for the analytical stage-time and pipeline-period algebra."""

import pytest

from repro.core.allocation import allocate_rra, allocate_waa
from repro.core.analytical import (
    StageTimes,
    decode_stage_times,
    encode_stage_times,
    estimate_placement_memory,
    pipelined_batch_completion,
    pipelined_iteration_period,
    placement_fits_memory,
    token_latency,
)
from repro.core.config import SchedulePolicy, TensorParallelConfig


class TestStageTimes:
    def test_bottleneck_and_traversal(self):
        times = StageTimes((1.0, 3.0, 2.0))
        assert times.bottleneck == 3.0
        assert times.traversal == 6.0
        assert times.num_stages == 3

    def test_empty(self):
        times = StageTimes(())
        assert times.bottleneck == 0.0 and times.traversal == 0.0


class TestPipelineAlgebra:
    def test_saturated_pipeline_period_is_bottleneck_bound(self):
        times = StageTimes((1.0, 1.0, 1.0))
        assert pipelined_iteration_period(times, micro_batches=4) == pytest.approx(4.0)

    def test_unsaturated_pipeline_period_is_traversal_bound(self):
        times = StageTimes((1.0, 1.0, 1.0))
        assert pipelined_iteration_period(times, micro_batches=1) == pytest.approx(3.0)

    def test_batch_completion_fill_plus_steady(self):
        times = StageTimes((1.0, 2.0, 1.0))
        assert pipelined_batch_completion(times, micro_batches=3) == pytest.approx(8.0)

    def test_token_latency_is_traversal(self):
        times = StageTimes((0.5, 0.5))
        assert token_latency(times) == pytest.approx(1.0)

    def test_invalid_micro_batches(self):
        with pytest.raises(ValueError):
            pipelined_iteration_period(StageTimes((1.0,)), 0)
        with pytest.raises(ValueError):
            pipelined_batch_completion(StageTimes((1.0,)), 0)


class TestStageTimeEstimation:
    def test_rra_stage_times_cover_all_stages(self, tiny_profile, tiny_model, tiny_cluster):
        placement = allocate_rra(tiny_model, tiny_cluster)
        enc = encode_stage_times(tiny_profile, placement, batch=8, avg_input_len=48)
        dec = decode_stage_times(tiny_profile, placement, batch=8, avg_context_len=64)
        assert enc.num_stages == len(placement.encode_stages)
        assert dec.num_stages == len(placement.decode_stages)
        assert all(t > 0 for t in enc.times)
        assert all(t > 0 for t in dec.times)

    def test_encode_much_heavier_than_decode(self, tiny_profile, tiny_model, tiny_cluster):
        placement = allocate_rra(tiny_model, tiny_cluster)
        enc = encode_stage_times(tiny_profile, placement, 64, 256)
        dec = decode_stage_times(tiny_profile, placement, 64, 256)
        assert enc.traversal > 5 * dec.traversal

    def test_tensor_parallel_stage_has_sync_overhead(self, tiny_model):
        # On an NVLink cluster, TP=4 shortens the compute-heavy prefill
        # traversal relative to a 4-deep pipeline, but by less than 4x
        # because of the all-reduce synchronisation it adds.  (On the PCIe
        # A40 cluster the all-reduce cost can exceed the savings, which is
        # why partial TP is a schedule decision rather than a default.)
        from repro.core.profiler import XProfiler
        from repro.hardware.cluster import a100_cluster

        cluster = a100_cluster(4)
        profile = XProfiler(
            tiny_model, cluster, max_batch=128, max_seq_len=512,
            batch_points=8, length_points=8,
        ).profile()
        tp_placement = allocate_rra(
            tiny_model, cluster, TensorParallelConfig(degree=4, num_gpus=4)
        )
        plain = allocate_rra(tiny_model, cluster)
        tp_total = encode_stage_times(profile, tp_placement, 64, 256).traversal
        plain_total = encode_stage_times(profile, plain, 64, 256).traversal
        assert tp_total < plain_total
        assert tp_total > plain_total / 4


class TestMemoryEstimation:
    def test_small_batches_fit(self, tiny_model, tiny_cluster):
        placement = allocate_rra(tiny_model, tiny_cluster)
        memory = estimate_placement_memory(placement, 4, 16, 48, 64)
        assert placement_fits_memory(memory)
        assert all(m.weights_gib > 0 for m in memory)

    def test_huge_batches_do_not_fit(self, tiny_model, tiny_cluster):
        placement = allocate_rra(tiny_model, tiny_cluster)
        memory = estimate_placement_memory(placement, 4, 10 ** 7, 512, 4096)
        assert not placement_fits_memory(memory)

    def test_waa_decode_stages_hold_kv_cache(self, tiny_model, tiny_cluster):
        placement = allocate_waa(tiny_model, tiny_cluster, 1.0, 1.0, SchedulePolicy.WAA_C)
        memory = estimate_placement_memory(placement, 4, 64, 48, 64)
        by_role = {m.role: m for m in memory}
        assert by_role["decode"].kv_cache_gib > by_role["encode"].kv_cache_gib


class TestBatchedAlgebra:
    """The vectorized stage-time/memory helpers must match the scalar ones."""

    def test_stage_times_batch_matches_scalar(self, tiny_profile, tiny_model, tiny_cluster):
        import numpy as np
        from repro.core.analytical import (
            decode_stage_times_batch,
            encode_stage_times_batch,
        )

        placements = [
            allocate_rra(tiny_model, tiny_cluster),
            allocate_rra(
                tiny_model, tiny_cluster, TensorParallelConfig(degree=2, num_gpus=4)
            ),
            allocate_waa(tiny_model, tiny_cluster, 1.0, 2.0, SchedulePolicy.WAA_C),
        ]
        batches = np.array([0.0, 0.25, 1.0, 6.5, 64.0])
        for placement in placements:
            enc = encode_stage_times_batch(tiny_profile, placement, batches, 48.0)
            dec = decode_stage_times_batch(tiny_profile, placement, batches, 64.0)
            for p, batch in enumerate(batches):
                enc_scalar = encode_stage_times(tiny_profile, placement, batch, 48.0)
                dec_scalar = decode_stage_times(tiny_profile, placement, batch, 64.0)
                assert tuple(enc.times[:, p]) == enc_scalar.times
                assert tuple(dec.times[:, p]) == dec_scalar.times
                assert enc.bottleneck[p] == enc_scalar.bottleneck
                assert dec.traversal[p] == dec_scalar.traversal

    def test_pipeline_algebra_batch_matches_scalar(self):
        import numpy as np
        from repro.core.analytical import (
            StageTimesBatch,
            pipelined_batch_completion_batch,
            pipelined_iteration_period_batch,
        )

        times = StageTimesBatch(np.array([[1.0, 0.5], [3.0, 0.5], [2.0, 4.0]]))
        for p, column in enumerate(((1.0, 3.0, 2.0), (0.5, 0.5, 4.0))):
            scalar = StageTimes(column)
            for m in (1, 2, 5):
                assert pipelined_iteration_period_batch(times, m)[p] == (
                    pipelined_iteration_period(scalar, m)
                )
                assert pipelined_batch_completion_batch(times, m)[p] == (
                    pipelined_batch_completion(scalar, m)
                )
        per_point_micro = np.array([2, 3])
        period = pipelined_iteration_period_batch(times, per_point_micro)
        assert period[0] == pipelined_iteration_period(StageTimes((1.0, 3.0, 2.0)), 2)
        assert period[1] == pipelined_iteration_period(StageTimes((0.5, 0.5, 4.0)), 3)
        with pytest.raises(ValueError):
            pipelined_iteration_period_batch(times, 0)

    def test_memory_batch_matches_scalar(self, tiny_model, tiny_cluster):
        import numpy as np
        from repro.core.analytical import (
            estimate_placement_memory_batch,
            placement_fits_memory_batch,
        )

        placement = allocate_waa(tiny_model, tiny_cluster, 1.0, 1.0, SchedulePolicy.WAA_M)
        encode = np.array([1.0, 4.0, 64.0, 4.0])
        decode = np.array([8.0, 64.0, 1024.0, 1e7])
        batch = estimate_placement_memory_batch(placement, encode, decode, 48.0, 64.0)
        fits = placement_fits_memory_batch(batch)
        for p in range(len(encode)):
            scalar = estimate_placement_memory(
                placement, encode[p], decode[p], 48.0, 64.0
            )
            assert bool(fits[p]) == placement_fits_memory(scalar)
            for sm, bm in zip(scalar, batch):
                assert bm.at(p) == sm  # dataclass equality: bit-identical fields

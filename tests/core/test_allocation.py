"""Tests for RRA / WAA-C / WAA-M layer allocation."""

import pytest

from repro.core.allocation import (
    Placement,
    StagePlan,
    allocate_rra,
    allocate_waa,
    build_placement,
    stage_weight_bytes,
    waa_memory_weights,
)
from repro.core.config import SchedulePolicy, TensorParallelConfig
from repro.hardware.cluster import a40_cluster


class TestRRAAllocation:
    def test_layers_split_evenly_across_gpus(self, tiny_model, tiny_cluster):
        placement = allocate_rra(tiny_model, tiny_cluster)
        placement.validate_layer_totals()
        assert len(placement.stages) == tiny_cluster.num_gpus
        encoder_counts = {s.encoder_layers for s in placement.stages}
        assert max(encoder_counts) - min(encoder_counts) <= 1
        assert all(s.role == "both" for s in placement.stages)

    def test_partial_tensor_parallelism_reduces_stage_count(self, tiny_model, tiny_cluster):
        tp = TensorParallelConfig(degree=2, num_gpus=2)
        placement = allocate_rra(tiny_model, tiny_cluster, tp)
        assert len(placement.stages) == 3  # one 2-GPU group + two single GPUs
        assert placement.stages[0].tp_degree == 2
        placement.validate_layer_totals()

    def test_no_weight_replication(self, tiny_model, tiny_cluster):
        assert allocate_rra(tiny_model, tiny_cluster).weight_replication == 1.0

    def test_encoder_decoder_model(self, tiny_encdec_model, tiny_cluster):
        placement = allocate_rra(tiny_encdec_model, tiny_cluster)
        placement.validate_layer_totals()
        total_enc = sum(s.encoder_layers for s in placement.stages)
        assert total_enc == tiny_encdec_model.num_encoder_layers


class TestWAAAllocation:
    def test_stages_split_by_weight(self, tiny_model, tiny_cluster):
        placement = allocate_waa(
            tiny_model, tiny_cluster, encode_weight=3.0, decode_weight=1.0,
            policy=SchedulePolicy.WAA_C,
        )
        placement.validate_layer_totals()
        assert len(placement.encode_stages) == 3
        assert len(placement.decode_stages) == 1

    def test_minimum_one_stage_each_side(self, tiny_model, tiny_cluster):
        placement = allocate_waa(
            tiny_model, tiny_cluster, encode_weight=100.0, decode_weight=1.0,
            policy=SchedulePolicy.WAA_M,
        )
        assert len(placement.decode_stages) >= 1
        assert len(placement.encode_stages) >= 1

    def test_decoder_only_models_replicate_weights(self, tiny_model, tiny_cluster):
        placement = allocate_waa(
            tiny_model, tiny_cluster, 1.0, 1.0, SchedulePolicy.WAA_C
        )
        assert placement.weight_replication == pytest.approx(2.0)

    def test_encoder_decoder_models_do_not_replicate(self, tiny_encdec_model, tiny_cluster):
        placement = allocate_waa(
            tiny_encdec_model, tiny_cluster, 1.0, 1.0, SchedulePolicy.WAA_C
        )
        assert placement.weight_replication == pytest.approx(1.0)

    def test_single_gpu_cluster_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            allocate_waa(tiny_model, a40_cluster(1), 1.0, 1.0, SchedulePolicy.WAA_C)

    def test_non_waa_policy_rejected(self, tiny_model, tiny_cluster):
        with pytest.raises(ValueError):
            allocate_waa(tiny_model, tiny_cluster, 1.0, 1.0, SchedulePolicy.RRA)

    def test_memory_weights_favour_decode_for_long_outputs(self, tiny_model):
        enc_w, dec_w = waa_memory_weights(
            tiny_model, avg_input_len=32, avg_output_len=256,
            decode_batch=512, encode_batch=2,
        )
        assert dec_w > enc_w


class TestPlacementValidation:
    def test_duplicate_gpu_rejected(self, tiny_model, tiny_cluster):
        stage_a = StagePlan(0, (0, 1), 4, 4)
        stage_b = StagePlan(1, (1, 2), 4, 4)
        with pytest.raises(ValueError):
            Placement(
                policy=SchedulePolicy.RRA,
                stages=(stage_a, stage_b),
                cluster=tiny_cluster,
                model=tiny_model,
            )

    def test_layer_total_mismatch_detected(self, tiny_model, tiny_cluster):
        stage = StagePlan(0, (0,), tiny_model.num_layers - 1, tiny_model.num_layers)
        placement = Placement(
            policy=SchedulePolicy.RRA,
            stages=(stage,),
            cluster=tiny_cluster,
            model=tiny_model,
        )
        with pytest.raises(ValueError):
            placement.validate_layer_totals()

    def test_build_placement_dispatch(self, tiny_model, tiny_cluster):
        rra = build_placement(SchedulePolicy.RRA, tiny_model, tiny_cluster)
        waa = build_placement(
            SchedulePolicy.WAA_C, tiny_model, tiny_cluster, encode_weight=1, decode_weight=1
        )
        assert rra.policy is SchedulePolicy.RRA
        assert waa.policy is SchedulePolicy.WAA_C


class TestStageWeightBytes:
    def test_decoder_only_shared_stage_counts_once(self, tiny_model):
        stage = StagePlan(0, (0,), encoder_layers=4, decoder_layers=4, role="both")
        expected = 4 * tiny_model.layer_bytes(False)
        assert stage_weight_bytes(tiny_model, stage) == pytest.approx(expected)

    def test_decoder_only_dedicated_stages_count_separately(self, tiny_model):
        enc = StagePlan(0, (0,), encoder_layers=8, decoder_layers=0, role="encode")
        dec = StagePlan(1, (1,), encoder_layers=0, decoder_layers=8, role="decode")
        total = stage_weight_bytes(tiny_model, enc) + stage_weight_bytes(tiny_model, dec)
        assert total == pytest.approx(2 * 8 * tiny_model.layer_bytes(False))

    def test_encoder_decoder_counts_cross_attention(self, tiny_encdec_model):
        stage = StagePlan(0, (0,), encoder_layers=2, decoder_layers=2, role="both")
        expected = 2 * tiny_encdec_model.layer_bytes(False) + 2 * tiny_encdec_model.layer_bytes(True)
        assert stage_weight_bytes(tiny_encdec_model, stage) == pytest.approx(expected)

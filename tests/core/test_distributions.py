"""Tests for sequence distributions and the Section 6 completion math."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributions import (
    SequenceDistribution,
    average_context_length,
    completion_probability,
    decode_batch_for_encode_batch,
    expected_completion_fraction,
    expected_decode_batch_per_iteration,
)


class TestSequenceDistribution:
    def test_truncated_normal_statistics(self):
        dist = SequenceDistribution.truncated_normal(mean=64, std=16, max_len=128)
        assert abs(dist.mean - 64) < 4
        assert 10 < dist.std < 20
        assert dist.min_len >= 1
        assert dist.max_len == 128

    def test_probabilities_sum_to_one(self):
        dist = SequenceDistribution.truncated_normal(32, 13, 80)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_constant_distribution(self):
        dist = SequenceDistribution.constant(10)
        assert dist.mean == 10
        assert dist.std == 0
        assert dist.percentile(99) == 10
        assert dist.pmf(10) == 1.0 and dist.pmf(9) == 0.0

    def test_empirical_matches_samples(self):
        samples = [4, 4, 8, 8, 8, 16]
        dist = SequenceDistribution.empirical(samples)
        assert dist.mean == pytest.approx(np.mean(samples))
        assert dist.pmf(8) == pytest.approx(0.5)

    def test_skew_normal_moments_and_direction(self):
        base = SequenceDistribution.truncated_normal(128, 40, 400)
        pos = SequenceDistribution.skew_normal(128, 40, 0.41, 400)
        neg = SequenceDistribution.skew_normal(128, 40, -0.41, 400)
        assert abs(pos.mean - 128) < 8 and abs(neg.mean - 128) < 8
        assert abs(pos.std - 40) < 8
        # Positive skew pushes the far tail out relative to negative skew.
        assert pos.percentile(99) > neg.percentile(99)
        del base

    def test_skew_zero_equals_truncated_normal(self):
        a = SequenceDistribution.skew_normal(64, 16, 0.0, 128)
        b = SequenceDistribution.truncated_normal(64, 16, 128)
        assert np.allclose(a.probabilities, b.probabilities)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            SequenceDistribution.truncated_normal(10, 0, 20)
        with pytest.raises(ValueError):
            SequenceDistribution.truncated_normal(10, 5, 0)
        with pytest.raises(ValueError):
            SequenceDistribution.skew_normal(10, 5, 1.5, 20)
        with pytest.raises(ValueError):
            SequenceDistribution.empirical([])
        with pytest.raises(ValueError):
            SequenceDistribution(lengths=np.array([1, 2]), probabilities=np.array([0.5]))

    def test_percentile_monotone(self):
        dist = SequenceDistribution.truncated_normal(64, 30, 200)
        assert dist.percentile(50) <= dist.percentile(90) <= dist.percentile(99)

    def test_sampling_reproducible_and_in_support(self):
        dist = SequenceDistribution.truncated_normal(64, 16, 128)
        rng = np.random.default_rng(0)
        samples = dist.sample(1000, rng)
        assert samples.min() >= 1 and samples.max() <= 128
        assert abs(samples.mean() - dist.mean) < 3

    def test_scaled_mean_and_std(self):
        dist = SequenceDistribution.truncated_normal(100, 20, 300)
        bigger = dist.scaled_mean(1.3)
        assert bigger.mean > dist.mean * 1.2
        wider = dist.scaled_std(1.5)
        assert wider.std > dist.std * 1.2


class TestStatisticCaching:
    """mean/std/max_len/percentile are cached (the scheduler's hot loop
    reads them on every estimate); caching must not change any value."""

    def test_cached_properties_are_stable(self):
        dist = SequenceDistribution.truncated_normal(64, 16, 128)
        expected_mean = float(np.dot(dist.lengths, dist.probabilities))
        assert dist.mean == expected_mean
        assert dist.mean == expected_mean  # second read hits the cache
        assert dist.std == dist.std
        assert dist.max_len == 128 and dist.max_len == 128

    def test_mean_cached_in_instance_dict(self):
        dist = SequenceDistribution.truncated_normal(64, 16, 128)
        assert "mean" not in dist.__dict__
        first = dist.mean
        assert dist.__dict__["mean"] == first

    def test_percentile_memo_returns_identical_values(self):
        dist = SequenceDistribution.truncated_normal(64, 30, 256)
        uncached = {q: dist_fresh.percentile(q) for q, dist_fresh in
                    ((q, SequenceDistribution.truncated_normal(64, 30, 256))
                     for q in (0, 25, 50, 90, 99, 100))}
        for q, value in uncached.items():
            assert dist.percentile(q) == value
            assert dist.percentile(q) == value  # memoized second read
        with pytest.raises(ValueError):
            dist.percentile(101)

    def test_instances_do_not_share_caches(self):
        a = SequenceDistribution.constant(10)
        b = SequenceDistribution.constant(20)
        assert a.percentile(50) == 10
        assert b.percentile(50) == 20
        assert a.mean == 10 and b.mean == 20


class TestCompletionProbability:
    def test_all_outputs_within_nd_complete_in_one_phase(self):
        dist = SequenceDistribution.constant(8)
        p_u = completion_probability(dist, num_decode_iterations=16)
        assert p_u.sum() == pytest.approx(1.0)
        assert p_u[7] == pytest.approx(1.0)

    def test_long_outputs_split_across_phases(self):
        dist = SequenceDistribution.constant(20)
        p_u = completion_probability(dist, num_decode_iterations=10)
        # ceil(20/10) = 2 phases; completes at iteration 10 of one of them.
        assert p_u.sum() == pytest.approx(0.5)
        assert p_u[9] == pytest.approx(0.5)

    def test_fraction_decreases_with_nd(self):
        dist = SequenceDistribution.truncated_normal(32, 13, 80)
        fractions = [expected_completion_fraction(dist, nd) for nd in (4, 8, 16, 32, 64)]
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))

    def test_decode_batch_at_least_encode_batch(self):
        dist = SequenceDistribution.truncated_normal(32, 13, 80)
        b_d = decode_batch_for_encode_batch(16, dist, num_decode_iterations=8)
        assert b_d >= 16

    def test_decode_batch_steady_state_consistency(self):
        """B_D * completion fraction must give back B_E."""
        dist = SequenceDistribution.truncated_normal(128, 68, 320)
        for n_d in (4, 16, 64):
            b_d = decode_batch_for_encode_batch(32, dist, n_d)
            assert b_d * expected_completion_fraction(dist, n_d) == pytest.approx(32)

    def test_per_iteration_batches_decay_monotonically(self):
        dist = SequenceDistribution.truncated_normal(32, 13, 80)
        batches = expected_decode_batch_per_iteration(100, dist, 16)
        assert batches[0] == pytest.approx(100)
        assert all(a >= b - 1e-9 for a, b in zip(batches, batches[1:]))
        assert np.all(batches >= 0)

    def test_invalid_nd_rejected(self):
        dist = SequenceDistribution.constant(4)
        with pytest.raises(ValueError):
            completion_probability(dist, 0)

    @given(
        mean=st.integers(min_value=8, max_value=200),
        nd=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_fraction_bounded(self, mean, nd):
        dist = SequenceDistribution.truncated_normal(mean, mean / 3, 2 * mean + 10)
        fraction = expected_completion_fraction(dist, nd)
        assert 0 < fraction <= 1.0 + 1e-9


class TestAverageContext:
    def test_decoder_only_includes_input(self):
        inp = SequenceDistribution.constant(100)
        out = SequenceDistribution.constant(20)
        ctx_dec = average_context_length(inp, out, decoder_only=True)
        ctx_encdec = average_context_length(inp, out, decoder_only=False)
        assert ctx_dec == pytest.approx(ctx_encdec + 100)

    def test_length_biased_generated_context(self):
        inp = SequenceDistribution.constant(1)
        out = SequenceDistribution.constant(40)
        # For a constant output of 40, the average cached generation is ~20.
        ctx = average_context_length(inp, out, decoder_only=False)
        assert ctx == pytest.approx(20.0)

"""Tests for the ExeGPT facade."""

import pytest

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.core.exegpt import ExeGPT
from repro.workloads.synthetic import generate_task_trace, generate_trace_from_distributions
from repro.workloads.tasks import get_task


class TestConstruction:
    def test_for_task_uses_table2_deployment(self):
        engine = ExeGPT.for_task("OPT-13B", "S")
        assert engine.cluster.num_gpus == 4
        assert engine.model.name == "OPT 13B"

    def test_for_task_gpu_override(self):
        engine = ExeGPT.for_task("OPT-13B", "S", num_gpus=8)
        assert engine.cluster.num_gpus == 8

    def test_for_trace_estimates_distributions(self):
        trace = generate_task_trace(get_task("S"), 64, seed=0)
        engine = ExeGPT.for_trace("OPT-13B", trace)
        assert abs(engine.output_distribution.mean - trace.output_lengths().mean()) < 1e-6

    def test_unknown_model_or_task_raises(self):
        with pytest.raises(KeyError):
            ExeGPT.for_task("GPT-5", "S")
        with pytest.raises(KeyError):
            ExeGPT.for_task("OPT-13B", "Z")


class TestWorkflow:
    def test_schedule_estimate_run_cycle(self, tiny_engine, short_input_dist, short_output_dist):
        search = tiny_engine.schedule(LatencyConstraint(bound_s=float("inf")))
        assert search.found
        estimate = tiny_engine.estimate(search.best.config)
        assert estimate.throughput_seq_per_s > 0
        trace = generate_trace_from_distributions(
            short_input_dist, short_output_dist, num_requests=48, seed=3
        )
        result = tiny_engine.run(trace, search.best.config)
        assert result.num_requests == 48

    def test_schedule_accepts_float_bound(self, tiny_engine):
        result = tiny_engine.schedule(1000.0, policies=(SchedulePolicy.RRA,))
        assert result.found

    def test_schedule_and_run(self, tiny_engine, short_input_dist, short_output_dist):
        trace = generate_trace_from_distributions(
            short_input_dist, short_output_dist, num_requests=32, seed=5
        )
        search, result = tiny_engine.schedule_and_run(trace, float("inf"))
        assert search.found and result is not None
        assert result.num_requests == 32

    def test_update_distributions_invalidates_simulator(self, tiny_engine, short_output_dist):
        simulator_before = tiny_engine.simulator
        tiny_engine.update_distributions(output_distribution=short_output_dist.scaled_mean(1.2))
        assert tiny_engine.simulator is not simulator_before
        tiny_engine.update_distributions(output_distribution=short_output_dist)

    def test_profile_is_cached(self, tiny_engine):
        assert tiny_engine.profile is tiny_engine.profile

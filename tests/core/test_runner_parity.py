"""Golden-fixture parity tests: replays must stay bit-identical.

The execution-engine refactor (PR 3) moved iteration construction out of
``XRunner`` and the baselines into :mod:`repro.engine.execution`.  These
tests pin the replay outputs to JSON fixtures generated from the
pre-refactor seed path, so any drift in task construction order, stage
durations or timestamp bookkeeping shows up as an exact-value mismatch --
not a tolerance failure.

JSON serializes floats through ``repr``, which round-trips ``float``
exactly, so ``==`` comparisons below really are bit-level.

Regenerating the fixtures (only when an *intentional* semantic change
lands)::

    PYTHONPATH=src python tests/core/test_runner_parity.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.baselines.faster_transformer import FasterTransformer
from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.distributions import SequenceDistribution
from repro.core.profiler import XProfiler
from repro.core.runner import XRunner
from repro.core.simulator import XSimulator
from repro.engine.metrics import RunResult
from repro.hardware.cluster import a40_cluster
from repro.models.spec import Architecture, ModelSpec
from repro.workloads.synthetic import generate_trace_from_distributions

GOLDEN_DIR = Path(__file__).parent / "golden"


def _build_world():
    """The deterministic tiny setup every golden case replays against."""
    model = ModelSpec(
        name="Tiny-GPT",
        architecture=Architecture.DECODER_ONLY,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        vocab_size=8192,
    )
    encdec = ModelSpec(
        name="Tiny-T5",
        architecture=Architecture.ENCODER_DECODER,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        vocab_size=8192,
    )
    cluster = a40_cluster(4)
    input_dist = SequenceDistribution.truncated_normal(
        mean=48, std=16, max_len=96, name="in"
    )
    output_dist = SequenceDistribution.truncated_normal(
        mean=16, std=6, max_len=40, name="out"
    )
    profile = XProfiler(
        model, cluster, max_batch=128, max_seq_len=512,
        batch_points=10, length_points=10,
    ).profile()
    encdec_profile = XProfiler(
        encdec, cluster, max_batch=128, max_seq_len=512,
        batch_points=10, length_points=10,
    ).profile()
    simulator = XSimulator(profile, input_dist, output_dist)
    encdec_simulator = XSimulator(encdec_profile, input_dist, output_dist)
    trace = generate_trace_from_distributions(
        input_dist, output_dist, num_requests=96, seed=11
    )
    return simulator, encdec_simulator, trace


def _fresh_trace(trace):
    """Traces are immutable specs, but regenerate per case for isolation."""
    return trace


def _golden_cases():
    """name -> callable producing a RunResult (built lazily, run fresh).

    Every case takes ``columnar``: the replays must be bit-identical on the
    columnar :class:`~repro.engine.pool.RequestPool` *and* the per-object
    :class:`~repro.engine.pool.ListPool` reference backend, which is what
    licenses the perf harness's list-vs-columnar comparison.
    """
    simulator, encdec_simulator, trace = _build_world()

    def rra(columnar=True):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        return XRunner(simulator, config, columnar=columnar).run(trace)

    def rra_static(columnar=True):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        return XRunner(
            simulator, config, dynamic_adjustment=False, columnar=columnar
        ).run(trace)

    def rra_tp(columnar=True):
        from repro.core.config import TensorParallelConfig

        config = ScheduleConfig(
            SchedulePolicy.RRA,
            encode_batch=8,
            decode_iterations=4,
            tensor_parallel=TensorParallelConfig(degree=2, num_gpus=4),
        )
        return XRunner(simulator, config, columnar=columnar).run(trace)

    def waa_c(columnar=True):
        config = ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=2, micro_batches=2)
        return XRunner(simulator, config, columnar=columnar).run(trace)

    def waa_m(columnar=True):
        config = ScheduleConfig(SchedulePolicy.WAA_M, encode_batch=2, micro_batches=1)
        return XRunner(simulator, config, columnar=columnar).run(trace)

    def waa_encdec(columnar=True):
        config = ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=2, micro_batches=1)
        return XRunner(encdec_simulator, config, columnar=columnar).run(trace)

    def orca(columnar=True):
        system = Orca(
            profile=simulator.profile,
            input_distribution=simulator.input_distribution,
            output_distribution=simulator.output_distribution,
        )
        return system.run(trace, batch_size=16, columnar=columnar)

    def vllm(columnar=True):
        system = Vllm(
            profile=simulator.profile,
            input_distribution=simulator.input_distribution,
            output_distribution=simulator.output_distribution,
        )
        return system.run(trace, batch_size=8, columnar=columnar)

    def ft(columnar=True):
        system = FasterTransformer(
            profile=simulator.profile,
            input_distribution=simulator.input_distribution,
            output_distribution=simulator.output_distribution,
        )
        return system.run(trace, batch_size=16, columnar=columnar)

    return {
        "rra": rra,
        "rra_static": rra_static,
        "rra_tp": rra_tp,
        "waa_c": waa_c,
        "waa_m": waa_m,
        "waa_encdec": waa_encdec,
        "orca": orca,
        "vllm": vllm,
        "ft": ft,
    }


def result_to_jsonable(result: RunResult) -> dict:
    """Exact JSON form of a RunResult (object keys stringified via repr)."""
    return {
        "system": result.system,
        "makespan_s": result.makespan_s,
        "num_requests": result.num_requests,
        "total_generated_tokens": result.total_generated_tokens,
        "latencies_s": list(result.latencies_s),
        "completion_times_s": list(result.completion_times_s),
        "output_lengths": list(result.output_lengths),
        "warmup_requests": result.warmup_requests,
        "stage_utilization": {
            repr(k): v for k, v in result.stage_utilization.items()
        },
        "stage_times": {k: list(v) for k, v in result.stage_times.items()},
        "peak_memory_gib": {
            repr(k): v for k, v in result.peak_memory_gib.items()
        },
        "extra": dict(result.extra),
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, run in _golden_cases().items():
        payload = result_to_jsonable(run())
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path}")


@pytest.fixture(scope="module")
def golden_cases():
    return _golden_cases()


@pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "list"])
@pytest.mark.parametrize(
    "name",
    ["rra", "rra_static", "rra_tp", "waa_c", "waa_m", "waa_encdec",
     "orca", "vllm", "ft"],
)
def test_replay_matches_golden_fixture(golden_cases, name, columnar):
    """Every replay path reproduces its pre-refactor output exactly.

    Both request-pool backends are held to the same fixtures: the columnar
    pool (production) and the per-object list reference backend the perf
    harness benchmarks against.
    """
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"golden fixture {path} missing; regenerate with "
        "`PYTHONPATH=src python tests/core/test_runner_parity.py --regenerate`"
    )
    expected = json.loads(path.read_text())
    actual = result_to_jsonable(golden_cases[name](columnar=columnar))
    assert actual.keys() == expected.keys()
    for key in expected:
        assert actual[key] == expected[key], f"{name}: field {key!r} diverged"


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)

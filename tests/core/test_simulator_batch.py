"""Vectorized-vs-scalar parity tests for the batched estimation engine.

``XSimulator.estimate_batch`` must agree with per-point ``estimate`` on
throughput, latency and feasibility to 1e-9 (relative) across policies,
partial-TP settings and sequence-length distributions -- that contract is
what lets the scheduler treat the two engines as interchangeable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig
from repro.core.distributions import SequenceDistribution
from repro.core.simulator import XSimulator

_REL_TOL = 1e-9
_VALUE_FIELDS = (
    "throughput_seq_per_s",
    "throughput_tokens_per_s",
    "latency_s",
    "cycle_time_s",
    "decode_batch",
)


def assert_estimates_match(scalar, batched) -> None:
    """Batched estimate must match the scalar reference within 1e-9."""
    assert batched is not None
    assert batched.memory_feasible == scalar.memory_feasible
    assert batched.target_length == scalar.target_length
    for field in _VALUE_FIELDS:
        sv = getattr(scalar, field)
        bv = getattr(batched, field)
        assert bv == pytest.approx(sv, rel=_REL_TOL, abs=1e-12), field
    assert len(batched.stage_memory) == len(scalar.stage_memory)
    for sm, bm in zip(scalar.stage_memory, batched.stage_memory):
        assert bm.total_gib == pytest.approx(sm.total_gib, rel=_REL_TOL, abs=1e-12)
        assert bm.fits == sm.fits


def _rra_configs(max_encode_batch: int = 24, max_nd: int = 24) -> list[ScheduleConfig]:
    return [
        ScheduleConfig(
            SchedulePolicy.RRA, encode_batch=be, decode_iterations=nd
        )
        for be in (1, 2, 5, 11, max_encode_batch)
        for nd in (1, 2, 7, max_nd)
    ]


def _waa_configs(max_encode_batch: int = 24) -> list[ScheduleConfig]:
    return [
        ScheduleConfig(policy, encode_batch=be, micro_batches=bm)
        for policy in (SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)
        for be in (1, 3, 9, max_encode_batch)
        for bm in (1, 2, 3)
    ]


class TestBatchParity:
    def test_rra_grid(self, tiny_simulator):
        configs = _rra_configs()
        batched = tiny_simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_waa_grid(self, tiny_simulator):
        configs = _waa_configs()
        batched = tiny_simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_mixed_policies_preserve_order(self, tiny_simulator):
        configs = _rra_configs() + _waa_configs()
        configs = configs[::2] + configs[1::2]  # interleave policies
        batched = tiny_simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert b.config == config
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_partial_tensor_parallel(self, tiny_simulator):
        tp_options = [
            TensorParallelConfig(degree=2, num_gpus=2),
            TensorParallelConfig(degree=2, num_gpus=4),
            TensorParallelConfig(degree=4, num_gpus=4),
        ]
        configs = []
        for tp in tp_options:
            configs.append(
                ScheduleConfig(
                    SchedulePolicy.RRA,
                    encode_batch=6,
                    decode_iterations=9,
                    tensor_parallel=tp,
                )
            )
            if tp.stages_for(4) >= 2:
                configs.append(
                    ScheduleConfig(
                        SchedulePolicy.WAA_C, encode_batch=6, tensor_parallel=tp
                    )
                )
        batched = tiny_simulator.estimate_batch(configs, strict=False)
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_decode_batch_override(self, tiny_simulator):
        configs = [
            ScheduleConfig(
                SchedulePolicy.RRA,
                encode_batch=4,
                decode_iterations=8,
                decode_batch_override=override,
            )
            for override in (1, 16, 200)
        ]
        batched = tiny_simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_explicit_target_length(self, tiny_simulator):
        configs = _rra_configs()[:6]
        batched = tiny_simulator.estimate_batch(configs, target_length=17)
        for config, b in zip(configs, batched):
            assert_estimates_match(
                tiny_simulator.estimate(config, target_length=17), b
            )

    def test_encoder_decoder_model(self, tiny_encdec_simulator):
        configs = _rra_configs()[:8] + _waa_configs()[:8]
        batched = tiny_encdec_simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_encdec_simulator.estimate(config), b)

    def test_infeasible_points_flagged_identically(self, tiny_simulator):
        configs = [
            ScheduleConfig(
                SchedulePolicy.RRA,
                encode_batch=4,
                decode_iterations=4,
                decode_batch_override=10 ** 7,
            ),
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=4, decode_iterations=4),
        ]
        batched = tiny_simulator.estimate_batch(configs)
        assert batched[0].memory_feasible is False
        assert batched[1].memory_feasible is True
        for config, b in zip(configs, batched):
            assert_estimates_match(tiny_simulator.estimate(config), b)

    def test_strict_mode_raises_like_scalar(self, tiny_simulator):
        # WAA on a fully tensor-parallel cluster has a single pipeline stage,
        # which no WAA split can serve.
        bad = ScheduleConfig(
            SchedulePolicy.WAA_C,
            encode_batch=2,
            tensor_parallel=TensorParallelConfig(degree=4, num_gpus=4),
        )
        with pytest.raises(ValueError):
            tiny_simulator.estimate(bad)
        with pytest.raises(ValueError):
            tiny_simulator.estimate_batch([bad], strict=True)
        assert tiny_simulator.estimate_batch([bad], strict=False) == [None]


class TestBatchParityHypothesis:
    @given(
        encode_batch=st.integers(min_value=1, max_value=48),
        second=st.integers(min_value=1, max_value=32),
        policy=st.sampled_from(
            [SchedulePolicy.RRA, SchedulePolicy.WAA_C, SchedulePolicy.WAA_M]
        ),
        tp_degree=st.sampled_from([1, 2]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_configs(
        self, tiny_simulator, encode_batch, second, policy, tp_degree
    ):
        tp = (
            TensorParallelConfig()
            if tp_degree == 1
            else TensorParallelConfig(degree=2, num_gpus=2)
        )
        if policy is SchedulePolicy.RRA:
            config = ScheduleConfig(
                policy,
                encode_batch=encode_batch,
                decode_iterations=second,
                tensor_parallel=tp,
            )
        else:
            config = ScheduleConfig(
                policy,
                encode_batch=encode_batch,
                micro_batches=min(second, 4),
                tensor_parallel=tp,
            )
        (batched,) = tiny_simulator.estimate_batch([config])
        assert_estimates_match(tiny_simulator.estimate(config), batched)

    @given(
        mean_in=st.floats(min_value=4, max_value=80),
        mean_out=st.floats(min_value=4, max_value=60),
        std=st.floats(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_distributions(self, tiny_profile, mean_in, mean_out, std, seed):
        input_dist = SequenceDistribution.truncated_normal(mean_in, std, max_len=128)
        output_dist = SequenceDistribution.truncated_normal(mean_out, std, max_len=96)
        simulator = XSimulator(tiny_profile, input_dist, output_dist)
        rng = np.random.default_rng(seed)
        configs = []
        for _ in range(6):
            if rng.integers(2) == 0:
                configs.append(
                    ScheduleConfig(
                        SchedulePolicy.RRA,
                        encode_batch=int(rng.integers(1, 33)),
                        decode_iterations=int(rng.integers(1, 25)),
                    )
                )
            else:
                waa = [SchedulePolicy.WAA_C, SchedulePolicy.WAA_M]
                configs.append(
                    ScheduleConfig(
                        waa[int(rng.integers(2))],
                        encode_batch=int(rng.integers(1, 33)),
                        micro_batches=int(rng.integers(1, 4)),
                    )
                )
        batched = simulator.estimate_batch(configs)
        for config, b in zip(configs, batched):
            assert_estimates_match(simulator.estimate(config), b)

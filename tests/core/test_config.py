"""Tests for schedule configuration and control variables."""

import pytest

from repro.core.config import (
    LatencyConstraint,
    ScheduleConfig,
    SchedulePolicy,
    TensorParallelConfig,
    UNBOUNDED,
)


class TestTensorParallelConfig:
    def test_degree_one_ignores_gpu_count(self):
        tp = TensorParallelConfig(degree=1, num_gpus=4)
        assert tp.num_gpus == 0
        assert tp.num_groups == 0

    def test_groups_and_stages(self):
        tp = TensorParallelConfig(degree=2, num_gpus=4)
        assert tp.num_groups == 2
        assert tp.stages_for(8) == 6  # 4 single-GPU stages + 2 TP groups

    def test_full_tp(self):
        tp = TensorParallelConfig(degree=4, num_gpus=8)
        assert tp.stages_for(8) == 2

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TensorParallelConfig(degree=0)
        with pytest.raises(ValueError):
            TensorParallelConfig(degree=2, num_gpus=3)
        with pytest.raises(ValueError):
            TensorParallelConfig(degree=2, num_gpus=4).stages_for(2)


class TestScheduleConfig:
    def test_describe_rra(self):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=4)
        text = config.describe()
        assert "RRA" in text and "B_E=8" in text and "N_D=4" in text

    def test_describe_waa_with_tp(self):
        config = ScheduleConfig(
            SchedulePolicy.WAA_C,
            encode_batch=4,
            micro_batches=2,
            tensor_parallel=TensorParallelConfig(degree=2, num_gpus=4),
        )
        text = config.describe()
        assert "WAA-C" in text and "B_m=2" in text and "TP=2" in text

    def test_waa_requires_nd_one(self):
        with pytest.raises(ValueError):
            ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=4, decode_iterations=2)

    def test_invalid_batches_rejected(self):
        with pytest.raises(ValueError):
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=0)
        with pytest.raises(ValueError):
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=1, micro_batches=0)
        with pytest.raises(ValueError):
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=1, decode_batch_override=0)

    def test_with_creates_modified_copy(self):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8)
        other = config.with_(encode_batch=16)
        assert other.encode_batch == 16 and config.encode_batch == 8

    def test_policy_is_waa(self):
        assert SchedulePolicy.WAA_C.is_waa and SchedulePolicy.WAA_M.is_waa
        assert not SchedulePolicy.RRA.is_waa


class TestLatencyConstraint:
    def test_satisfied_with_tolerance(self):
        constraint = LatencyConstraint(bound_s=5.0)
        assert constraint.satisfied_by(5.0)
        assert not constraint.satisfied_by(5.2)
        assert constraint.satisfied_by(5.2, tolerance=0.5)

    def test_unbounded(self):
        assert UNBOUNDED.is_unbounded
        assert UNBOUNDED.satisfied_by(1e9)

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LatencyConstraint(bound_s=0.0)

"""Tests for XRunner: enforcing RRA and WAA schedules on the engine."""

import pytest

from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig
from repro.core.runner import XRunner
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def tiny_trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=96, seed=11
    )


def _run(simulator, config, trace, dynamic=True):
    return XRunner(simulator, config, dynamic_adjustment=dynamic).run(trace)


class TestRRARunner:
    def test_all_requests_complete_with_correct_tokens(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        result = _run(tiny_simulator, config, tiny_trace)
        assert result.num_requests == len(tiny_trace)
        assert result.total_generated_tokens == tiny_trace.total_output_tokens
        assert result.makespan_s > 0
        assert all(lat > 0 for lat in result.latencies_s)

    def test_stage_times_recorded(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        result = _run(tiny_simulator, config, tiny_trace)
        assert len(result.stage_times["encode"]) > 0
        assert len(result.stage_times["decode"]) > 0
        assert result.peak_memory_gib

    def test_more_frequent_encoding_increases_measured_throughput(
        self, tiny_simulator, tiny_trace
    ):
        frequent = _run(
            tiny_simulator,
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=2),
            tiny_trace,
        )
        infrequent = _run(
            tiny_simulator,
            ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=32),
            tiny_trace,
        )
        assert frequent.throughput_seq_per_s > infrequent.throughput_seq_per_s * 0.95

    def test_tensor_parallel_schedule_runs(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(
            SchedulePolicy.RRA,
            encode_batch=8,
            decode_iterations=8,
            tensor_parallel=TensorParallelConfig(degree=2, num_gpus=4),
        )
        result = _run(tiny_simulator, config, tiny_trace)
        assert result.num_requests == len(tiny_trace)

    def test_empty_trace_rejected(self, tiny_simulator, short_input_dist, short_output_dist):
        from repro.workloads.trace import WorkloadTrace

        empty = WorkloadTrace(
            name="empty", requests=(), input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=4)
        with pytest.raises(ValueError):
            _run(tiny_simulator, config, empty)


class TestWAARunner:
    def test_all_requests_complete(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=2, micro_batches=2)
        result = _run(tiny_simulator, config, tiny_trace)
        assert result.num_requests == len(tiny_trace)
        assert result.total_generated_tokens == tiny_trace.total_output_tokens
        assert result.system == "exegpt-waa-c"

    def test_waa_m_variant_runs(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.WAA_M, encode_batch=2, micro_batches=1)
        result = _run(tiny_simulator, config, tiny_trace)
        assert result.system == "exegpt-waa-m"
        assert result.num_requests == len(tiny_trace)

    def test_encoder_decoder_model(self, tiny_encdec_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.WAA_C, encode_batch=2, micro_batches=1)
        result = _run(tiny_encdec_simulator, config, tiny_trace)
        assert result.num_requests == len(tiny_trace)


class TestSimulatorRunnerAgreement:
    def test_estimate_and_measurement_within_factor_two(self, tiny_simulator, tiny_trace):
        """The simulator drives scheduling decisions, so it must track the
        engine's measured throughput within a reasonable factor."""
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        estimate = tiny_simulator.estimate(config)
        result = _run(tiny_simulator, config, tiny_trace)
        measured = result.steady_state_throughput()
        assert measured > 0
        ratio = estimate.throughput_seq_per_s / measured
        assert 0.4 < ratio < 2.5

    def test_dynamic_adjustment_does_not_break_completion(self, tiny_simulator, tiny_trace):
        config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=8, decode_iterations=8)
        with_adj = _run(tiny_simulator, config, tiny_trace, dynamic=True)
        without = _run(tiny_simulator, config, tiny_trace, dynamic=False)
        assert with_adj.num_requests == without.num_requests == len(tiny_trace)

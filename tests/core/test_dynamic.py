"""Tests for the dynamic workload adjuster (Section 5.2)."""

import pytest

from repro.core.dynamic import DynamicWorkloadAdjuster
from repro.engine.request import RequestState
from repro.workloads.trace import RequestSpec


def _pending(lengths: list[int]) -> list[RequestState]:
    return [
        RequestState(spec=RequestSpec(i, input_len=length, output_len=4))
        for i, length in enumerate(lengths)
    ]


def _adjuster(**kwargs) -> DynamicWorkloadAdjuster:
    defaults = dict(
        target_encode_batch=4,
        target_decode_batch=32.0,
        avg_input_len=50.0,
        workload_threshold=0.1,
        pool_threshold=0.1,
    )
    defaults.update(kwargs)
    return DynamicWorkloadAdjuster(**defaults)


class TestTargetBatch:
    def test_full_pool_admits_nothing(self):
        assert _adjuster().target_batch_for_pool(pool_size=32, freed_slots=0) == 0

    def test_deficit_refills_pool(self):
        target = _adjuster().target_batch_for_pool(pool_size=28, freed_slots=4)
        assert target == 4

    def test_start_up_is_capped_not_one_shot(self):
        adjuster = _adjuster()
        target = adjuster.target_batch_for_pool(pool_size=0, freed_slots=0)
        assert 0 < target <= 2 * adjuster.target_encode_batch * (1 + adjuster.pool_threshold) + 1
        assert target < adjuster.target_decode_batch

    def test_disabled_returns_static_batch(self):
        adjuster = _adjuster(enabled=False)
        assert adjuster.target_batch_for_pool(0, 0) == 4
        assert adjuster.target_batch_for_pool(100, 0) == 4

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            _adjuster().target_batch_for_pool(-1, 0)


class TestAdmission:
    def test_admits_up_to_target_count(self):
        adjuster = _adjuster()
        pending = _pending([50] * 10)
        batch = adjuster.admit(pending, pool_size=28, freed_slots=4)
        assert len(batch) == 4

    def test_workload_threshold_limits_long_inputs(self):
        adjuster = _adjuster()
        # Deficit of 4 slots, but each request is 3x the average input length,
        # so the workload cap stops admission early.
        pending = _pending([150] * 10)
        batch = adjuster.admit(pending, pool_size=28, freed_slots=4)
        assert 1 <= len(batch) < 4

    def test_first_request_always_admitted(self):
        adjuster = _adjuster()
        pending = _pending([1000])
        batch = adjuster.admit(pending, pool_size=0, freed_slots=0)
        assert len(batch) == 1

    def test_empty_pending(self):
        assert _adjuster().admit([], 0, 0) == []

    def test_full_pool_admits_nothing(self):
        assert _adjuster().admit(_pending([50] * 4), pool_size=40, freed_slots=0) == []

    def test_disabled_admits_static_batch(self):
        adjuster = _adjuster(enabled=False)
        batch = adjuster.admit(_pending([500] * 10), pool_size=0, freed_slots=0)
        assert len(batch) == 4


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            _adjuster(target_encode_batch=0)
        with pytest.raises(ValueError):
            _adjuster(target_decode_batch=0)
        with pytest.raises(ValueError):
            _adjuster(avg_input_len=0)
        with pytest.raises(ValueError):
            _adjuster(workload_threshold=2.0)

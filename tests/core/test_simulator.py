"""Tests for XSimulator estimates."""

import pytest

from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig


def _rra(encode_batch=8, decode_iterations=8, **kwargs) -> ScheduleConfig:
    return ScheduleConfig(
        SchedulePolicy.RRA,
        encode_batch=encode_batch,
        decode_iterations=decode_iterations,
        **kwargs,
    )


def _waa(encode_batch=2, micro_batches=1, policy=SchedulePolicy.WAA_C, **kwargs) -> ScheduleConfig:
    return ScheduleConfig(
        policy, encode_batch=encode_batch, micro_batches=micro_batches, **kwargs
    )


class TestRRAEstimates:
    def test_estimate_fields_consistent(self, tiny_simulator):
        est = tiny_simulator.estimate(_rra())
        assert est.throughput_seq_per_s > 0
        assert est.latency_s > 0
        assert est.cycle_time_s > 0
        assert est.decode_batch >= est.config.encode_batch
        assert est.feasible
        assert est.target_length == tiny_simulator.output_distribution.percentile(99)

    def test_bigger_encode_batch_raises_throughput_and_latency(self, tiny_simulator):
        small = tiny_simulator.estimate(_rra(encode_batch=2))
        large = tiny_simulator.estimate(_rra(encode_batch=24))
        assert large.throughput_seq_per_s > small.throughput_seq_per_s
        assert large.latency_s > small.latency_s

    def test_more_frequent_encoding_raises_throughput_and_latency(self, tiny_simulator):
        frequent = tiny_simulator.estimate(_rra(decode_iterations=2))
        infrequent = tiny_simulator.estimate(_rra(decode_iterations=32))
        assert frequent.throughput_seq_per_s > infrequent.throughput_seq_per_s
        assert frequent.latency_s > infrequent.latency_s

    def test_tensor_parallelism_reduces_latency_at_paper_scale(self, opt13b_engine):
        """For a 13B model the paper's partial TP trades throughput for
        latency; on a toy-sized model the all-reduce overhead would dominate,
        so this check runs at OPT-13B scale."""
        simulator = opt13b_engine.simulator
        plain = simulator.estimate(_rra(encode_batch=16, decode_iterations=8))
        tp = simulator.estimate(
            _rra(
                encode_batch=16,
                decode_iterations=8,
                tensor_parallel=TensorParallelConfig(degree=4, num_gpus=4),
            )
        )
        assert tp.latency_s < plain.latency_s

    def test_explicit_target_length(self, tiny_simulator):
        short = tiny_simulator.estimate(_rra(), target_length=8)
        long = tiny_simulator.estimate(_rra(), target_length=32)
        assert long.latency_s > short.latency_s

    def test_decode_batch_override(self, tiny_simulator):
        est = tiny_simulator.estimate(_rra(decode_batch_override=64))
        assert est.decode_batch == 64


class TestWAAEstimates:
    def test_estimate_fields_consistent(self, tiny_simulator):
        est = tiny_simulator.estimate(_waa())
        assert est.throughput_seq_per_s > 0
        assert est.latency_s > 0
        assert est.decode_batch == pytest.approx(
            est.config.encode_batch * tiny_simulator.output_distribution.mean
        )

    def test_micro_batches_never_increase_throughput(self, tiny_simulator):
        """Splitting the decode batch can only add per-kernel overhead, so
        estimated throughput must not grow with the micro-batch count; the
        latency impact stays bounded."""
        few = tiny_simulator.estimate(_waa(encode_batch=4, micro_batches=1))
        many = tiny_simulator.estimate(_waa(encode_batch=4, micro_batches=3))
        assert many.throughput_seq_per_s <= few.throughput_seq_per_s * 1.05
        assert many.latency_s <= few.latency_s * 1.5

    def test_waa_m_allocates_differently_from_waa_c(self, tiny_simulator):
        c = tiny_simulator.estimate(_waa(encode_batch=8, policy=SchedulePolicy.WAA_C))
        m = tiny_simulator.estimate(_waa(encode_batch=8, policy=SchedulePolicy.WAA_M))
        # They need not differ on a tiny model, but both must be valid placements.
        assert len(c.placement.encode_stages) >= 1
        assert len(m.placement.decode_stages) >= 1

    def test_waa_placement_dedicates_stages(self, tiny_simulator):
        est = tiny_simulator.estimate(_waa())
        roles = {s.role for s in est.placement.stages}
        assert roles == {"encode", "decode"}

    def test_encoder_decoder_model_estimates(self, tiny_encdec_simulator):
        rra = tiny_encdec_simulator.estimate(_rra())
        waa = tiny_encdec_simulator.estimate(_waa())
        assert rra.throughput_seq_per_s > 0
        assert waa.throughput_seq_per_s > 0


class TestFeasibility:
    def test_oversized_batch_flagged_infeasible(self, tiny_simulator):
        est = tiny_simulator.estimate(_rra(encode_batch=8, decode_batch_override=10 ** 7))
        assert not est.memory_feasible
        assert not est.satisfies(float("inf"))

    def test_satisfies_checks_both_memory_and_latency(self, tiny_simulator):
        est = tiny_simulator.estimate(_rra())
        assert est.satisfies(est.latency_s + 1.0)
        assert not est.satisfies(est.latency_s / 100.0)
